"""repro: a reproduction of "Keeping Master Green at Scale" (EuroSys '19).

The package implements Uber's SubmitQueue — a change-management system
that keeps a monorepo mainline always green at thousands of commits per
day — together with every substrate it depends on and every baseline the
paper evaluates against.

Quickstart::

    from repro import quickstart_components

    sim, stream = quickstart_components(rate_per_hour=300, count=200,
                                        workers=100)
    result = sim.run(stream)
    print(result.strategy_name, result.changes_committed,
          result.throughput_per_hour)

Package map (see DESIGN.md for the full inventory):

===================  ====================================================
``repro.vcs``         in-memory monorepo (commits, patches, mainline)
``repro.buildsys``    Buck-like build system (targets, hashing, executor)
``repro.changes``     changes/revisions/developers, lifecycle, queues
``repro.conflict``    target-hash conflict analysis (Eq. 6, union graph)
``repro.speculation`` speculation graph, Equations 1-5, build selection
``repro.predictor``   logistic-regression success/conflict models
``repro.planner``     planner engine, build controller, worker pool
``repro.strategies``  SubmitQueue / Oracle / baselines
``repro.sim``         discrete-event simulator
``repro.workload``    synthetic monorepos and change streams
``repro.metrics``     percentiles, CDFs, greenness tracking
``repro.service``     the submit/status API facade
``repro.experiments`` one module per paper figure
===================  ====================================================
"""

from __future__ import annotations

__version__ = "1.0.0"


def quickstart_components(
    rate_per_hour: float = 300.0,
    count: int = 200,
    workers: int = 100,
    seed: int = 0,
    recorder=None,
):
    """Build a ready-to-run SubmitQueue simulation on a synthetic workload.

    Returns ``(simulation, stream)``; call ``simulation.run(stream)``.
    Uses the oracle predictor for zero-setup determinism — see
    ``examples/`` for training a learned predictor.  Pass a
    :class:`repro.obs.Recorder` to trace the run.
    """
    from dataclasses import replace

    from repro.changes.truth import potential_conflict
    from repro.obs.recorder import NULL_RECORDER
    from repro.planner.controller import LabelBuildController
    from repro.predictor.predictors import OraclePredictor
    from repro.sim.simulator import Simulation
    from repro.strategies.submitqueue import SubmitQueueStrategy
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.scenarios import IOS_WORKLOAD

    generator = WorkloadGenerator(replace(IOS_WORKLOAD, seed=seed))
    stream = generator.stream(rate_per_hour, count)
    simulation = Simulation(
        strategy=SubmitQueueStrategy(OraclePredictor()),
        controller=LabelBuildController(),
        workers=workers,
        conflict_predicate=potential_conflict,
        recorder=recorder if recorder is not None else NULL_RECORDER,
    )
    return simulation, stream
