"""The build-target DAG: lookup, validation, and dep/rdep traversal.

The graph is the substrate for Algorithm-1 hashing (deps-first order), the
affected-target closure (reverse deps), and the section-5.2 structure
comparison that gates the conflict analyzer's fast path.  All traversals
are deterministic: ties are broken by sorted target name, so hashes,
orders, and reports are reproducible across runs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.buildsys.target import Target
from repro.errors import DependencyCycleError, UnknownTargetError
from repro.types import Path, TargetName


class BuildGraph:
    """A collection of :class:`Target` nodes with dependency edges."""

    def __init__(self, targets: Iterable[Target] = ()) -> None:
        self._targets: Dict[TargetName, Target] = {}
        self._dependents: Dict[TargetName, Set[TargetName]] = {}
        self._owners: Dict[Path, Set[TargetName]] = {}
        for target in targets:
            self.add_target(target)

    # -- construction and lookup ------------------------------------------

    def add_target(self, target: Target) -> None:
        """Add one target; duplicate names are an error."""
        if target.name in self._targets:
            raise ValueError(f"duplicate target {target.name}")
        self._targets[target.name] = target
        self._dependents.setdefault(target.name, set())
        for dep in target.deps:
            self._dependents.setdefault(dep, set()).add(target.name)
        for src in target.srcs:
            self._owners.setdefault(src, set()).add(target.name)

    def target(self, name: TargetName) -> Target:
        try:
            return self._targets[name]
        except KeyError:
            raise UnknownTargetError(name) from None

    def names(self) -> List[TargetName]:
        """All target names, sorted."""
        return sorted(self._targets)

    def __len__(self) -> int:
        return len(self._targets)

    def __iter__(self) -> Iterator[Target]:
        return iter(self._targets.values())

    def __contains__(self, name: object) -> bool:
        return name in self._targets

    def validate(self) -> "BuildGraph":
        """Check every dependency resolves to a target in the graph."""
        for target in self:
            for dep in target.deps:
                if dep not in self._targets:
                    raise UnknownTargetError(
                        f"{target.name} depends on unknown target {dep}"
                    )
        return self

    # -- traversal ---------------------------------------------------------

    def topological_order(self) -> List[TargetName]:
        """Target names, dependencies first; deterministic (name-sorted ties).

        Raises :class:`DependencyCycleError` when the graph has a cycle.
        Dependencies on targets absent from the graph are ignored here —
        :meth:`validate` is the place that rejects them.
        """
        in_degree: Dict[TargetName, int] = {}
        for name, target in self._targets.items():
            in_degree[name] = sum(1 for dep in target.deps if dep in self._targets)
        queue = deque(sorted(n for n, degree in in_degree.items() if degree == 0))
        order: List[TargetName] = []
        while queue:
            name = queue.popleft()
            order.append(name)
            for dependent in sorted(self._dependents.get(name, ())):
                if dependent not in in_degree:
                    continue
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    queue.append(dependent)
        if len(order) != len(self._targets):
            cycle = sorted(set(self._targets) - set(order))
            raise DependencyCycleError(cycle)
        return order

    def transitive_deps(self, name: TargetName) -> Set[TargetName]:
        """Every target reachable through deps, excluding ``name`` itself."""
        self.target(name)
        seen: Set[TargetName] = set()
        frontier = deque([name])
        while frontier:
            current = frontier.popleft()
            target = self._targets.get(current)
            if target is None:
                continue
            for dep in target.deps:
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        return seen

    def transitive_dependents(
        self, names: Iterable[TargetName]
    ) -> Set[TargetName]:
        """The reverse-dependency closure of ``names``, including the seeds.

        This is the paper's *affected closure*: editing any source of a seed
        target changes exactly these targets' hashes.
        """
        seen: Set[TargetName] = set()
        frontier: deque = deque()
        for name in names:
            self.target(name)
            if name not in seen:
                seen.add(name)
                frontier.append(name)
        while frontier:
            current = frontier.popleft()
            for dependent in self._dependents.get(current, ()):
                if dependent not in seen:
                    seen.add(dependent)
                    frontier.append(dependent)
        return seen

    def dependents_of(self, name: TargetName) -> Set[TargetName]:
        """Direct reverse dependencies of one target."""
        self.target(name)
        return set(self._dependents.get(name, ()))

    def targets_owning(self, path: Path) -> Set[TargetName]:
        """Targets listing ``path`` among their sources (indexed, O(1))."""
        return set(self._owners.get(path, ()))

    def induced_order(self, names: Iterable[TargetName]) -> List[TargetName]:
        """Dependencies-first order of the subgraph induced by ``names``.

        Edges to targets outside ``names`` are ignored (the caller already
        knows their hashes/results).  Deterministic like
        :meth:`topological_order`; raises :class:`DependencyCycleError` when
        the induced subgraph is cyclic.
        """
        member = {name for name in names if name in self._targets}
        in_degree: Dict[TargetName, int] = {}
        for name in member:
            in_degree[name] = sum(
                1 for dep in self._targets[name].deps if dep in member
            )
        queue = deque(sorted(n for n, degree in in_degree.items() if degree == 0))
        order: List[TargetName] = []
        while queue:
            name = queue.popleft()
            order.append(name)
            for dependent in sorted(self._dependents.get(name, ())):
                if dependent not in member:
                    continue
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    queue.append(dependent)
        if len(order) != len(member):
            raise DependencyCycleError(sorted(member - set(order)))
        return order

    # -- structure ---------------------------------------------------------

    def structure(self) -> frozenset:
        """Canonical structural fingerprint (section 5.2).

        Content-only changes leave this untouched; adding/removing targets,
        rewiring deps, or moving sources between targets all change it.
        """
        return frozenset(target.definition() for target in self)

    def same_structure(self, other: "BuildGraph") -> bool:
        return self.structure() == other.structure()

    # -- shape metrics -----------------------------------------------------

    def depth(self) -> int:
        """Number of targets on the longest dependency chain."""
        depths: Dict[TargetName, int] = {}
        for name in self.topological_order():
            target = self._targets[name]
            below = [depths[dep] for dep in target.deps if dep in depths]
            depths[name] = 1 + (max(below) if below else 0)
        return max(depths.values(), default=0)

    def roots(self) -> Set[TargetName]:
        """Targets nothing depends on (the graph's top)."""
        return {
            name for name in self._targets if not self._dependents.get(name)
        }

    def leaves(self) -> Set[TargetName]:
        """Targets with no dependencies (the graph's bottom)."""
        return {target.name for target in self if not target.deps}
