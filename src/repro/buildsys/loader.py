"""BUILD-file parsing, rendering, and whole-snapshot graph loading.

BUILD files use a deliberately tiny dialect — a sequence of
``target(name=..., srcs=[...], deps=[...], steps=[...])`` calls whose
arguments are python literals::

    target(name = 'lib', srcs = ['lib.py'], deps = ['//base:base'])

Files are parsed with :mod:`ast` and evaluated with
:func:`ast.literal_eval`, so BUILD content can never execute code — the
hermeticity the real Buck/Bazel starlark evaluators enforce.  Any
malformed input raises :class:`repro.errors.BuildFileError`.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.buildsys.graph import BuildGraph
from repro.buildsys.target import Target
from repro.errors import BuildFileError
from repro.types import Path, StepKind

#: Exact file name (within its package directory) the loader recognizes.
BUILD_FILE_NAME = "BUILD"

_ALLOWED_FIELDS = ("name", "srcs", "deps", "steps")


def _literal(package: str, node: ast.expr) -> object:
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError, TypeError) as exc:
        raise BuildFileError(
            f"{package}/BUILD: arguments must be literals ({exc})"
        ) from None


def _string_list(package: str, field: str, value: object) -> List[str]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise BuildFileError(
            f"{package}/BUILD: {field} must be a list of strings, got {value!r}"
        )
    return value


def _parse_call(package: str, call: ast.Call) -> Target:
    if not isinstance(call.func, ast.Name) or call.func.id != "target":
        raise BuildFileError(
            f"{package}/BUILD: only target(...) declarations are allowed"
        )
    if call.args:
        raise BuildFileError(
            f"{package}/BUILD: target() takes keyword arguments only"
        )
    fields = {}
    for keyword in call.keywords:
        if keyword.arg is None:
            raise BuildFileError(f"{package}/BUILD: **kwargs are not allowed")
        if keyword.arg not in _ALLOWED_FIELDS:
            raise BuildFileError(
                f"{package}/BUILD: unknown target field {keyword.arg!r}"
            )
        if keyword.arg in fields:
            raise BuildFileError(
                f"{package}/BUILD: duplicate field {keyword.arg!r}"
            )
        fields[keyword.arg] = _literal(package, keyword.value)

    name = fields.get("name")
    if not isinstance(name, str) or not name:
        raise BuildFileError(
            f"{package}/BUILD: target name must be a non-empty string"
        )
    srcs = _string_list(package, "srcs", fields.get("srcs", []))
    if any(not src for src in srcs):
        raise BuildFileError(f"{package}/BUILD: srcs must be non-empty paths")
    deps = _string_list(package, "deps", fields.get("deps", []))

    steps: Optional[Tuple[StepKind, ...]] = None
    if "steps" in fields:
        raw = _string_list(package, "steps", fields["steps"])
        try:
            steps = tuple(StepKind(step) for step in raw)
        except ValueError:
            raise BuildFileError(
                f"{package}/BUILD: unknown step kind in {raw!r}"
            ) from None

    prefix = f"{package}/" if package else ""
    try:
        return Target(
            f"//{package}:{name}",
            srcs=tuple(prefix + src for src in srcs),
            deps=tuple(deps),
            steps=steps,
        )
    except ValueError as exc:
        raise BuildFileError(f"{package}/BUILD: {exc}") from None


def parse_build_file(package: str, content: str) -> List[Target]:
    """Parse one BUILD file's content into its package's targets."""
    try:
        module = ast.parse(content)
    except SyntaxError as exc:
        raise BuildFileError(f"{package}/BUILD: syntax error ({exc.msg})") from None
    targets = []
    for statement in module.body:
        if not isinstance(statement, ast.Expr) or not isinstance(
            statement.value, ast.Call
        ):
            raise BuildFileError(
                f"{package}/BUILD: only target(...) calls are allowed"
            )
        targets.append(_parse_call(package, statement.value))
    return targets


def render_build_file(targets: Sequence[Target]) -> str:
    """Render targets back into BUILD-file content.

    Inverse of :func:`parse_build_file` up to normalization: parsing the
    rendered content yields the same targets (sources relative to the
    package, steps in canonical order).
    """
    blocks = []
    for target in targets:
        prefix = f"{target.package}/" if target.package else ""
        srcs = [
            src[len(prefix):] if prefix and src.startswith(prefix) else src
            for src in target.srcs
        ]
        blocks.append(
            "target(\n"
            f"    name = {target.short_name!r},\n"
            f"    srcs = {sorted(srcs)!r},\n"
            f"    deps = {list(target.deps)!r},\n"
            f"    steps = {[kind.value for kind in target.steps]!r},\n"
            ")\n"
        )
    return "\n".join(blocks)


def build_file_package(path: Path) -> Optional[str]:
    """The package a snapshot path declares, or None for non-BUILD paths."""
    package, _, basename = path.rpartition("/")
    return package if basename == BUILD_FILE_NAME else None


def reload_packages(
    base_graph: BuildGraph,
    snapshot: Mapping[Path, str],
    touched_paths: Iterable[Path],
) -> BuildGraph:
    """Splice re-parsed packages into a structurally-shared graph.

    Only BUILD files among ``touched_paths`` are re-parsed from
    ``snapshot``; every other package's :class:`Target` objects are shared
    with ``base_graph`` (identity-shared, which :func:`~repro.buildsys.hashing.dirty_targets`
    exploits).  Handles packages being added (new BUILD file), rewritten,
    and deleted (BUILD file gone from ``snapshot``).

    When no touched path is a BUILD file the graph cannot have changed and
    ``base_graph`` itself is returned.  Like :func:`load_build_graph`, the
    result is validated; the caller's ``touched_paths`` must cover every
    path that differs between ``base_graph``'s snapshot and ``snapshot``.
    """
    touched_packages = {
        package
        for package in (build_file_package(path) for path in touched_paths)
        if package is not None
    }
    if not touched_packages:
        return base_graph
    graph = BuildGraph()
    for target in base_graph:
        if target.package not in touched_packages:
            graph.add_target(target)
    for package in sorted(touched_packages):
        build_path = f"{package}/{BUILD_FILE_NAME}" if package else BUILD_FILE_NAME
        content = snapshot.get(build_path)
        if content is None:
            continue  # package deleted
        for target in parse_build_file(package, content):
            try:
                graph.add_target(target)
            except ValueError as exc:
                raise BuildFileError(str(exc)) from None
    graph.validate()
    return graph


def load_build_graph(snapshot: Mapping[Path, str]) -> BuildGraph:
    """Load and validate the build graph of one snapshot.

    ``snapshot`` is any path-to-content mapping (a plain dict or a
    :class:`repro.vcs.repository.Snapshot`).  Only files literally named
    ``BUILD`` are parsed; everything else is source content.  Raises
    :class:`BuildFileError` for unparsable or duplicate declarations and
    :class:`repro.errors.UnknownTargetError` for dangling deps.
    """
    graph = BuildGraph()
    for path in sorted(snapshot):
        package = build_file_package(path)
        if package is None:
            continue
        for target in parse_build_file(package, snapshot[path]):
            try:
                graph.add_target(target)
            except ValueError as exc:
                raise BuildFileError(str(exc)) from None
    graph.validate()
    return graph
