"""The build executor: full, subset, affected-only, and context builds.

Drives :func:`repro.buildsys.steps.evaluate_step` over a snapshot's graph
in dependency-first order, consulting the artifact cache before every
step.  Three entry points matter to SubmitQueue:

* :meth:`BuildExecutor.build` — everything (or a target subset plus its
  dependency closure): what "the mainline is green" means for one commit;
* :meth:`BuildExecutor.build_affected` — only the hash-delta between two
  snapshots: what a speculative build actually runs (section 6.2), with
  prior builds' work eliminated via cache hits;
* :meth:`BuildExecutor.build_between` — the same delta build over
  pre-derived :class:`BuildContext` objects, so the O(repo) graph load and
  whole-snapshot hashing are paid once per mainline head instead of once
  per build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.buildsys.cache import ArtifactCache
from repro.buildsys.graph import BuildGraph
from repro.buildsys.hashing import TargetHasher, incremental_hashes
from repro.buildsys.loader import load_build_graph, reload_packages
from repro.buildsys.steps import StepResult, evaluate_step
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.types import Path, TargetName


@dataclass
class BuildReport:
    """Everything one build did: per-step results and targets covered.

    ``success``/``steps_executed``/``steps_cached`` are running counters
    maintained by :meth:`append` (and seeded from any ``results`` passed to
    the constructor) — the planner reads them once per build in its hot
    loop, so they must not re-scan ``results`` on access.
    """

    results: List[StepResult] = field(default_factory=list)
    targets_built: List[TargetName] = field(default_factory=list)
    _executed: int = field(default=0, init=False, repr=False, compare=False)
    _cached: int = field(default=0, init=False, repr=False, compare=False)
    _first_failure: Optional[StepResult] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        seeded = self.results
        self.results = []
        for result in seeded:
            self.append(result)

    def append(self, result: StepResult) -> None:
        """Record one step result, keeping the running counters in sync."""
        self.results.append(result)
        if result.cached:
            self._cached += 1
        else:
            self._executed += 1
        if not result.passed and self._first_failure is None:
            self._first_failure = result

    @property
    def success(self) -> bool:
        """True when every executed-or-reused step passed (vacuously true)."""
        return self._first_failure is None

    def failures(self) -> List[StepResult]:
        return [result for result in self.results if not result.passed]

    def first_failure(self) -> Optional[StepResult]:
        return self._first_failure

    @property
    def steps_executed(self) -> int:
        """Steps actually evaluated (cache misses)."""
        return self._executed

    @property
    def steps_cached(self) -> int:
        """Steps satisfied from the artifact cache."""
        return self._cached


class BuildContext:
    """One snapshot's loaded graph and Algorithm-1 hash map, derivable in O(delta).

    A context created with :meth:`load` pays the full ``load_build_graph``
    + ``all_hashes`` cost once; every context derived from it with
    :meth:`derive` pays only for the touched packages and the dirty
    reverse-dependency closure (the same machinery the conflict analyzer
    uses).  Contexts are immutable value holders — safe to memoize per
    base commit and per speculation prefix.

    ``dirty_since_base`` accumulates the union of dirty closures along the
    derivation chain back to the root context: any target whose digest can
    differ from the root's is in it (digests outside it were copied
    verbatim by the seeded hasher at every step).  ``None`` marks a root.
    """

    __slots__ = (
        "snapshot",
        "graph",
        "hashes",
        "dirty_since_base",
        "rehashed",
        "depth",
        "_topo_holder",
    )

    def __init__(
        self,
        snapshot: Mapping[Path, str],
        graph: BuildGraph,
        hashes: Dict[TargetName, str],
        dirty_since_base: Optional[frozenset] = None,
        rehashed: int = 0,
        depth: int = 0,
        topo_holder: Optional[list] = None,
    ) -> None:
        self.snapshot = snapshot
        self.graph = graph
        self.hashes = hashes
        self.dirty_since_base = dirty_since_base
        #: Digests recomputed when this context was derived (0 for roots).
        self.rehashed = rehashed
        #: Overlay layers between ``snapshot`` and the nearest plain dict.
        self.depth = depth
        # One-element list shared by every context holding the *same* graph
        # object, so the topological position index is computed at most
        # once per distinct graph.
        self._topo_holder = topo_holder if topo_holder is not None else [None]

    @classmethod
    def load(cls, snapshot: Mapping[Path, str]) -> "BuildContext":
        """A root context: full graph load + whole-snapshot hashing."""
        graph = load_build_graph(snapshot)
        hashes = TargetHasher(graph, snapshot).all_hashes()
        return cls(snapshot, graph, hashes)

    def derive(
        self,
        snapshot: Mapping[Path, str],
        touched_paths: Iterable[Path],
    ) -> "BuildContext":
        """The context for ``snapshot``, which is this context's snapshot
        with only ``touched_paths`` changed (typically the overlay returned
        by ``Patch.apply``).  Costs O(touched packages + dirty closure).
        """
        touched = set(touched_paths)
        graph = reload_packages(self.graph, snapshot, touched)
        hashes, dirty, computed = incremental_hashes(
            self.graph, self.hashes, graph, snapshot, touched
        )
        accumulated = (
            frozenset(dirty)
            if self.dirty_since_base is None
            else self.dirty_since_base | dirty
        )
        return BuildContext(
            snapshot,
            graph,
            hashes,
            dirty_since_base=accumulated,
            rehashed=computed,
            depth=self.depth + 1,
            topo_holder=self._topo_holder if graph is self.graph else None,
        )

    def as_root(self, flatten_above_depth: Optional[int] = None) -> "BuildContext":
        """This context re-labelled as a derivation root (new mainline base).

        ``flatten_above_depth`` bounds overlay-chain depth: when the chain
        behind ``snapshot`` is deeper, the snapshot is materialized into a
        plain dict so per-file lookups stay O(1) as the base advances
        commit after commit (amortized O(repo / flatten_above_depth)).
        """
        snapshot: Mapping[Path, str] = self.snapshot
        depth = self.depth
        if (
            flatten_above_depth is not None
            and depth > flatten_above_depth
            and hasattr(snapshot, "to_dict")
        ):
            snapshot = snapshot.to_dict()
            depth = 0
        return BuildContext(
            snapshot,
            self.graph,
            self.hashes,
            dirty_since_base=None,
            depth=depth,
            topo_holder=self._topo_holder,
        )

    def topo_index(self) -> Dict[TargetName, int]:
        """Target -> position in the full graph's topological order.

        ``topological_order`` is a deterministic function of the graph's
        nodes and edges, so sorting any affected subset by this index
        reproduces exactly the order the from-scratch path gets by
        filtering the full order.
        """
        holder = self._topo_holder
        if holder[0] is None:
            holder[0] = {
                name: position
                for position, name in enumerate(self.graph.topological_order())
            }
        return holder[0]

    def affected_against(self, base: "BuildContext") -> List[TargetName]:
        """Targets whose digest differs from ``base``, in build order.

        When this context was derived (transitively) from ``base``, only
        the accumulated dirty set can differ — everything else was copied
        verbatim — so the scan is O(dirty), not O(graph).
        """
        if self.dirty_since_base is None:
            candidates: Iterable[TargetName] = self.hashes
        else:
            candidates = self.dirty_since_base
        base_hashes = base.hashes
        hashes = self.hashes
        index = self.topo_index()
        affected = [
            name
            for name in candidates
            if name in hashes and base_hashes.get(name) != hashes[name]
        ]
        affected.sort(key=index.__getitem__)
        return affected


class BuildExecutor:
    """Executes build steps over snapshots, sharing one artifact cache."""

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        self.recorder = recorder

    def build(
        self,
        snapshot: Mapping[Path, str],
        targets: Optional[Iterable[TargetName]] = None,
        stop_on_failure: bool = False,
    ) -> BuildReport:
        """Build the whole snapshot, or ``targets`` plus their dep closures."""
        graph = load_build_graph(snapshot)
        hasher = TargetHasher(graph, snapshot)
        order = graph.topological_order()
        if targets is not None:
            wanted = set()
            for name in targets:
                graph.target(name)  # unknown targets are an error
                wanted.add(name)
                wanted |= graph.transitive_deps(name)
            order = [name for name in order if name in wanted]
        return self._run(graph, hasher, order, snapshot, stop_on_failure)

    def build_affected(
        self,
        base_snapshot: Mapping[Path, str],
        changed_snapshot: Mapping[Path, str],
        stop_on_failure: bool = False,
    ) -> BuildReport:
        """Build only the targets whose hash differs between two snapshots.

        This is the incremental build a speculation runs: targets outside
        the delta kept their hashes, so the base build already vouches for
        them.  An empty delta yields an empty (successful) report.
        """
        base_hashes = TargetHasher(
            load_build_graph(base_snapshot), base_snapshot
        ).all_hashes()
        changed_graph = load_build_graph(changed_snapshot)
        hasher = TargetHasher(changed_graph, changed_snapshot)
        changed_hashes = hasher.all_hashes()
        affected = {
            name
            for name, digest in changed_hashes.items()
            if base_hashes.get(name) != digest
        }
        order = [
            name for name in changed_graph.topological_order() if name in affected
        ]
        return self._run(changed_graph, hasher, order, changed_snapshot, stop_on_failure)

    def build_between(
        self,
        base: BuildContext,
        changed: BuildContext,
        stop_on_failure: bool = False,
    ) -> BuildReport:
        """:meth:`build_affected` over pre-derived contexts.

        Bit-identical to the from-scratch path — same affected set, same
        build order, same step results — but the base side costs nothing
        (memoized) and the changed side was derived in O(delta).
        """
        order = changed.affected_against(base)
        return self._run(
            changed.graph,
            changed.hashes.__getitem__,
            order,
            changed.snapshot,
            stop_on_failure,
        )

    def _run(
        self,
        graph: BuildGraph,
        hasher,
        order: List[TargetName],
        snapshot: Mapping[Path, str],
        stop_on_failure: bool,
    ) -> BuildReport:
        """``hasher``: a :class:`TargetHasher` or any name -> digest callable."""
        hash_of = hasher.hash_of if isinstance(hasher, TargetHasher) else hasher
        report = BuildReport()
        for name in order:
            target = graph.target(name)
            digest = hash_of(name)
            report.targets_built.append(name)
            for kind in target.steps:
                result = self.cache.get(digest, kind)
                if result is None:
                    result = evaluate_step(graph, target, kind, snapshot)
                    self.cache.put(digest, kind, result)
                report.append(result)
                if stop_on_failure and not result.passed:
                    self.record_report(report)
                    return report
        self.record_report(report)
        return report

    def record_report(self, report: BuildReport) -> None:
        """Publish one build's cache effectiveness to the registry.

        Public because builds merged back from a parallel backend are
        reconstructed outside :meth:`_run` yet must feed the same
        executor metrics.
        """
        if not self.recorder.enabled:
            return
        self.recorder.counter(
            "executor_builds_total", "Builds the executor ran."
        ).inc()
        self.recorder.counter(
            "executor_steps_executed_total",
            "Steps evaluated by the executor (artifact-cache misses).",
        ).inc(report.steps_executed)
        self.recorder.counter(
            "executor_steps_cached_total",
            "Steps eliminated by the artifact cache (section 6.2).",
        ).inc(report.steps_cached)
        self.recorder.counter(
            "executor_targets_built_total", "Targets covered by builds."
        ).inc(len(report.targets_built))
