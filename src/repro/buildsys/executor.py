"""The build executor: full, subset, and affected-only builds.

Drives :func:`repro.buildsys.steps.evaluate_step` over a snapshot's graph
in dependency-first order, consulting the artifact cache before every
step.  Two entry points matter to SubmitQueue:

* :meth:`BuildExecutor.build` — everything (or a target subset plus its
  dependency closure): what "the mainline is green" means for one commit;
* :meth:`BuildExecutor.build_affected` — only the hash-delta between two
  snapshots: what a speculative build actually runs (section 6.2), with
  prior builds' work eliminated via cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Optional

from repro.buildsys.cache import ArtifactCache
from repro.buildsys.graph import BuildGraph
from repro.buildsys.hashing import TargetHasher
from repro.buildsys.loader import load_build_graph
from repro.buildsys.steps import StepResult, evaluate_step
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.types import Path, TargetName


@dataclass
class BuildReport:
    """Everything one build did: per-step results and targets covered."""

    results: List[StepResult] = field(default_factory=list)
    targets_built: List[TargetName] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True when every executed-or-reused step passed (vacuously true)."""
        return all(result.passed for result in self.results)

    def failures(self) -> List[StepResult]:
        return [result for result in self.results if not result.passed]

    def first_failure(self) -> Optional[StepResult]:
        for result in self.results:
            if not result.passed:
                return result
        return None

    @property
    def steps_executed(self) -> int:
        """Steps actually evaluated (cache misses)."""
        return sum(1 for result in self.results if not result.cached)

    @property
    def steps_cached(self) -> int:
        """Steps satisfied from the artifact cache."""
        return sum(1 for result in self.results if result.cached)


class BuildExecutor:
    """Executes build steps over snapshots, sharing one artifact cache."""

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        self.recorder = recorder

    def build(
        self,
        snapshot: Mapping[Path, str],
        targets: Optional[Iterable[TargetName]] = None,
        stop_on_failure: bool = False,
    ) -> BuildReport:
        """Build the whole snapshot, or ``targets`` plus their dep closures."""
        graph = load_build_graph(snapshot)
        hasher = TargetHasher(graph, snapshot)
        order = graph.topological_order()
        if targets is not None:
            wanted = set()
            for name in targets:
                graph.target(name)  # unknown targets are an error
                wanted.add(name)
                wanted |= graph.transitive_deps(name)
            order = [name for name in order if name in wanted]
        return self._run(graph, hasher, order, snapshot, stop_on_failure)

    def build_affected(
        self,
        base_snapshot: Mapping[Path, str],
        changed_snapshot: Mapping[Path, str],
        stop_on_failure: bool = False,
    ) -> BuildReport:
        """Build only the targets whose hash differs between two snapshots.

        This is the incremental build a speculation runs: targets outside
        the delta kept their hashes, so the base build already vouches for
        them.  An empty delta yields an empty (successful) report.
        """
        base_hashes = TargetHasher(
            load_build_graph(base_snapshot), base_snapshot
        ).all_hashes()
        changed_graph = load_build_graph(changed_snapshot)
        hasher = TargetHasher(changed_graph, changed_snapshot)
        changed_hashes = hasher.all_hashes()
        affected = {
            name
            for name, digest in changed_hashes.items()
            if base_hashes.get(name) != digest
        }
        order = [
            name for name in changed_graph.topological_order() if name in affected
        ]
        return self._run(changed_graph, hasher, order, changed_snapshot, stop_on_failure)

    def _run(
        self,
        graph: BuildGraph,
        hasher: TargetHasher,
        order: List[TargetName],
        snapshot: Mapping[Path, str],
        stop_on_failure: bool,
    ) -> BuildReport:
        report = BuildReport()
        for name in order:
            target = graph.target(name)
            digest = hasher.hash_of(name)
            report.targets_built.append(name)
            for kind in target.steps:
                result = self.cache.get(digest, kind)
                if result is None:
                    result = evaluate_step(graph, target, kind, snapshot)
                    self.cache.put(digest, kind, result)
                report.results.append(result)
                if stop_on_failure and not result.passed:
                    self._record(report)
                    return report
        self._record(report)
        return report

    def _record(self, report: BuildReport) -> None:
        """Publish one build's cache effectiveness to the registry."""
        if not self.recorder.enabled:
            return
        self.recorder.counter(
            "executor_builds_total", "Builds the executor ran."
        ).inc()
        self.recorder.counter(
            "executor_steps_executed_total",
            "Steps evaluated by the executor (artifact-cache misses).",
        ).inc(report.steps_executed)
        self.recorder.counter(
            "executor_steps_cached_total",
            "Steps eliminated by the artifact cache (section 6.2).",
        ).inc(report.steps_cached)
        self.recorder.counter(
            "executor_targets_built_total", "Targets covered by builds."
        ).inc(len(report.targets_built))
