"""repro.buildsys: the Buck-like build system SubmitQueue programs against.

The paper's conflict analyzer (section 5) and build controller (section 6)
consume exactly four build-system capabilities, and this package provides
them over the in-memory snapshots of :mod:`repro.vcs`:

``target`` / ``graph``
    Build targets (``//package:name`` labels) and the dependency DAG with
    dep/rdep traversal, topological ordering, and structure comparison.
``loader``
    ``BUILD``-file parsing (a restricted python-literal dialect), rendering,
    and whole-snapshot graph loading.
``hashing`` / ``delta``
    Algorithm-1 target hashes — a target's hash covers its own sources, its
    declaration, and its transitive dependency hashes — and the
    affected-target delta sets feeding Equation 6.
``steps`` / ``cache`` / ``executor``
    Hermetic synthetic build steps driven by in-source directives
    (``# FAIL:<step>``, ``# CONFLICT:<token>``), an LRU artifact cache keyed
    by target hash x step kind, and a build executor whose cache hits are
    the paper's minimal-build-step elimination (section 6.2).
"""

from repro.buildsys.cache import ArtifactCache, CacheStats
from repro.buildsys.delta import (
    affected_targets,
    delta_as_dict,
    delta_names,
    deltas_union,
    equation6_conflict,
)
from repro.buildsys.executor import BuildExecutor, BuildReport
from repro.buildsys.graph import BuildGraph
from repro.buildsys.hashing import TargetHasher
from repro.buildsys.loader import (
    load_build_graph,
    parse_build_file,
    render_build_file,
)
from repro.buildsys.steps import (
    StepResult,
    StepSpec,
    evaluate_step,
    scan_directives,
)
from repro.buildsys.target import Target, target_package, target_short_name

__all__ = [
    "ArtifactCache",
    "BuildExecutor",
    "BuildGraph",
    "BuildReport",
    "CacheStats",
    "StepResult",
    "StepSpec",
    "Target",
    "TargetHasher",
    "affected_targets",
    "delta_as_dict",
    "delta_names",
    "deltas_union",
    "equation6_conflict",
    "evaluate_step",
    "load_build_graph",
    "parse_build_file",
    "render_build_file",
    "scan_directives",
    "target_package",
    "target_short_name",
]
