"""Algorithm 1: deterministic target hashes over one snapshot.

A target's hash digests

* its structural declaration (label, source list, step list),
* the *content* of each of its sources (with presence/absence encoded
  distinctly from empty content), and
* the hashes of its direct dependencies — which transitively cover the
  whole dependency closure.

Consequences the rest of the system (and the property tests) rely on:
hashing is pure — same graph + files, same hashes; editing any file in a
target's transitive closure changes its hash; and touching anything
*outside* that closure never does.  Hashes are computed once per target in
dependency-first order and memoized, so hashing a whole graph is O(nodes +
edges + bytes).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Mapping, Optional

from repro.buildsys.graph import BuildGraph
from repro.buildsys.target import Target
from repro.types import Path, TargetName

_SEPARATOR = b"\x00"
_MISSING = b"<missing>"


class TargetHasher:
    """Hashes every target of one graph against one file snapshot."""

    def __init__(self, graph: BuildGraph, files: Mapping[Path, str]) -> None:
        self._graph = graph
        self._files = files
        self._memo: Dict[TargetName, str] = {}

    def _feed(self, hasher, tag: bytes, payload: bytes) -> None:
        hasher.update(tag)
        hasher.update(str(len(payload)).encode("ascii"))
        hasher.update(_SEPARATOR)
        hasher.update(payload)

    def _digest(self, target: Target) -> str:
        hasher = hashlib.sha256()
        self._feed(hasher, b"name", target.name.encode("utf-8"))
        for kind in target.steps:
            self._feed(hasher, b"step", kind.value.encode("utf-8"))
        for src in target.srcs:
            content: Optional[str] = self._files.get(src)
            self._feed(hasher, b"src", src.encode("utf-8"))
            if content is None:
                self._feed(hasher, b"absent", _MISSING)
            else:
                self._feed(hasher, b"content", content.encode("utf-8"))
        for dep in target.deps:
            self._feed(hasher, b"dep", dep.encode("utf-8"))
            self._feed(
                hasher,
                b"dephash",
                self._memo.get(dep, "<unknown>").encode("ascii"),
            )
        return hasher.hexdigest()

    def _compute_all(self) -> None:
        if len(self._memo) == len(self._graph):
            return
        # Deps-first order guarantees every dep hash is memoized before any
        # dependent digests it; a cyclic graph fails here with
        # DependencyCycleError rather than hashing garbage.
        for name in self._graph.topological_order():
            if name not in self._memo:
                self._memo[name] = self._digest(self._graph.target(name))

    def hash_of(self, name: TargetName) -> str:
        """Algorithm-1 hash of one target (raises for unknown targets)."""
        self._graph.target(name)
        self._compute_all()
        return self._memo[name]

    def all_hashes(self) -> Dict[TargetName, str]:
        """Name-to-hash for every target in the graph."""
        self._compute_all()
        return dict(self._memo)
