"""Algorithm 1: deterministic target hashes over one snapshot.

A target's hash digests

* its structural declaration (label, source list, step list),
* the *content* of each of its sources (with presence/absence encoded
  distinctly from empty content), and
* the hashes of its direct dependencies — which transitively cover the
  whole dependency closure.

Consequences the rest of the system (and the property tests) rely on:
hashing is pure — same graph + files, same hashes; editing any file in a
target's transitive closure changes its hash; and touching anything
*outside* that closure never does.  Hashes are computed once per target in
dependency-first order and memoized.

Two incremental shortcuts keep analysis cheap at scale (the section-7.1
story: a change touching 3 files pays for its reverse-dependency closure,
not the whole repo):

* :meth:`TargetHasher.hash_of` digests only the requested target's
  dependency (ancestor) chain, never the whole graph;
* a hasher *seeded* with a prior hash map and a dirty set recomputes only
  the dirty targets' reverse-dependency closure — everything outside that
  closure reuses the seed digest verbatim (skyframe-style dirty-set
  invalidation).  :func:`dirty_targets` derives a sound dirty set from the
  touched paths plus structural diffs between two graphs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.buildsys.graph import BuildGraph
from repro.buildsys.target import Target
from repro.types import Path, TargetName

_SEPARATOR = b"\x00"
_MISSING = b"<missing>"


def dirty_targets(
    base_graph: BuildGraph,
    graph: BuildGraph,
    touched_paths: Iterable[Path],
) -> Set[TargetName]:
    """Targets of ``graph`` whose seed hash (from ``base_graph``'s map) is stale.

    A target is dirty when a touched path is one of its sources, or when
    its declaration differs from ``base_graph``'s (new targets included).
    Targets structurally shared between the graphs (the common case after
    :func:`repro.buildsys.loader.reload_packages`) are identity-compared
    first, so the scan costs O(targets) pointer checks plus O(touched).

    Reverse-dependency propagation is *not* included — callers (and the
    seeded :class:`TargetHasher`) expand the closure themselves.
    """
    dirty: Set[TargetName] = set()
    for path in touched_paths:
        dirty.update(graph.targets_owning(path))
    for target in graph:
        if target.name in dirty:
            continue
        if target.name not in base_graph:
            dirty.add(target.name)
            continue
        base_target = base_graph.target(target.name)
        if base_target is target:
            continue
        if base_target.definition() != target.definition():
            dirty.add(target.name)
    return dirty


class TargetHasher:
    """Hashes targets of one graph against one file snapshot.

    Without seeds every digest is computed on demand.  With
    ``seed_hashes``/``dirty``, digests outside the dirty set's
    reverse-dependency closure are taken from the seed map — the caller
    guarantees the seeds were computed on a graph/snapshot pair that
    differs from this one only at the dirty targets (see
    :func:`dirty_targets`).

    ``computed`` counts digests actually recomputed; ``dirty_closure`` is
    the set a seeded hasher will recompute (empty when unseeded).
    """

    def __init__(
        self,
        graph: BuildGraph,
        files: Mapping[Path, str],
        seed_hashes: Optional[Mapping[TargetName, str]] = None,
        dirty: Optional[Iterable[TargetName]] = None,
    ) -> None:
        self._graph = graph
        self._files = files
        self._memo: Dict[TargetName, str] = {}
        self.computed = 0
        self.dirty_closure: Set[TargetName] = set()
        if seed_hashes is not None:
            self.dirty_closure = graph.transitive_dependents(
                name for name in (dirty or ()) if name in graph
            )
            self._memo = {
                name: digest
                for name, digest in seed_hashes.items()
                if name in graph and name not in self.dirty_closure
            }

    def _feed(self, hasher, tag: bytes, payload: bytes) -> None:
        hasher.update(tag)
        hasher.update(str(len(payload)).encode("ascii"))
        hasher.update(_SEPARATOR)
        hasher.update(payload)

    def _digest(self, target: Target) -> str:
        hasher = hashlib.sha256()
        self._feed(hasher, b"name", target.name.encode("utf-8"))
        for kind in target.steps:
            self._feed(hasher, b"step", kind.value.encode("utf-8"))
        for src in target.srcs:
            content: Optional[str] = self._files.get(src)
            self._feed(hasher, b"src", src.encode("utf-8"))
            if content is None:
                self._feed(hasher, b"absent", _MISSING)
            else:
                self._feed(hasher, b"content", content.encode("utf-8"))
        for dep in target.deps:
            self._feed(hasher, b"dep", dep.encode("utf-8"))
            self._feed(
                hasher,
                b"dephash",
                self._memo.get(dep, "<unknown>").encode("ascii"),
            )
        self.computed += 1
        return hasher.hexdigest()

    def _compute(self, names: Iterable[TargetName]) -> None:
        """Digest ``names`` (skipping memoized ones) dependencies-first.

        A cyclic subgraph fails with DependencyCycleError rather than
        hashing garbage.
        """
        missing = [name for name in names if name not in self._memo]
        if not missing:
            return
        for name in self._graph.induced_order(missing):
            self._memo[name] = self._digest(self._graph.target(name))

    def hash_of(self, name: TargetName) -> str:
        """Algorithm-1 hash of one target (raises for unknown targets).

        Digests only the target's ancestor chain (its transitive deps and
        itself), not the whole graph.
        """
        self._graph.target(name)
        if name not in self._memo:
            chain = self._graph.transitive_deps(name)
            chain.add(name)
            self._compute(chain)
        return self._memo[name]

    def all_hashes(self) -> Dict[TargetName, str]:
        """Name-to-hash for every target in the graph."""
        if len(self._memo) != len(self._graph):
            self._compute(self._graph.names())
        return dict(self._memo)


def incremental_hashes(
    base_graph: BuildGraph,
    base_hashes: Mapping[TargetName, str],
    graph: BuildGraph,
    files: Mapping[Path, str],
    touched_paths: Iterable[Path],
) -> Tuple[Dict[TargetName, str], Set[TargetName], int]:
    """Rehash ``graph`` reusing ``base_hashes`` where provably unchanged.

    Returns ``(hashes, dirty_closure, computed)``: the full hash map, the
    set of targets that had to be rehashed (dirty seeds plus their
    reverse-dependency closure), and how many digests were computed.
    """
    seeds = dirty_targets(base_graph, graph, touched_paths)
    hasher = TargetHasher(graph, files, seed_hashes=base_hashes, dirty=seeds)
    hashes = hasher.all_hashes()
    return hashes, hasher.dirty_closure, hasher.computed
