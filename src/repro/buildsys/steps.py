"""Synthetic build steps driven by in-source directives.

Real compilers and test runners are replaced by two directives planted in
source content, which is what lets the workload layer mint changes with
*known* ground truth (section 8's evaluation needs individually-broken and
really-conflicting changes on demand):

``# FAIL:<step>``
    The owning target fails exactly that step kind (e.g. ``unit_test``).

``# CONFLICT:<token>``
    One occurrence visible to a target is harmless; two or more occurrences
    of the *same* token in its transitive source closure fail its test
    steps.  A pair of changes each planting one occurrence thus passes
    individually and fails combined — a real semantic conflict with no
    textual overlap.

Compile and artifact steps are not conflict-sensitive: a conflict is two
changes that each build but whose *combination* breaks tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.buildsys.graph import BuildGraph
from repro.buildsys.target import Target
from repro.types import Path, StepKind, TargetName

FAIL_DIRECTIVE = re.compile(r"#\s*FAIL:([A-Za-z_]+)")
CONFLICT_DIRECTIVE = re.compile(r"#\s*CONFLICT:([^\s#]+)")

#: Step kinds that two combined CONFLICT tokens break.
CONFLICT_SENSITIVE_STEPS = frozenset(
    {StepKind.UNIT_TEST, StepKind.INTEGRATION_TEST, StepKind.UI_TEST}
)


@dataclass(frozen=True)
class StepSpec:
    """Identity of one build step: which target, which kind."""

    target: TargetName
    kind: StepKind


@dataclass(frozen=True)
class StepResult:
    """Outcome of one step: pass/fail, a log line, and cache provenance."""

    spec: StepSpec
    passed: bool
    log: str = ""
    cached: bool = False


def scan_directives(
    sources: Iterable[str],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Count FAIL and CONFLICT directives across source contents.

    Returns ``(fails, conflicts)``: step-name -> occurrences and
    conflict-token -> occurrences.
    """
    fails: Dict[str, int] = {}
    conflicts: Dict[str, int] = {}
    for text in sources:
        for match in FAIL_DIRECTIVE.finditer(text):
            step = match.group(1)
            fails[step] = fails.get(step, 0) + 1
        for match in CONFLICT_DIRECTIVE.finditer(text):
            token = match.group(1)
            conflicts[token] = conflicts.get(token, 0) + 1
    return fails, conflicts


def _sources(snapshot: Mapping[Path, str], paths: Iterable[Path]) -> list:
    return [snapshot.get(path, "") for path in paths]


def evaluate_step(
    graph: BuildGraph,
    target: Target,
    kind: StepKind,
    snapshot: Mapping[Path, str],
) -> StepResult:
    """Run one synthetic step hermetically against a snapshot.

    FAIL directives act on the target's *own* sources; CONFLICT tokens are
    counted over the transitive dependency closure, because a conflict
    between a dependency's change and a dependent's change only surfaces
    when the dependent's tests see both.
    """
    spec = StepSpec(target.name, kind)
    own_sources = _sources(snapshot, target.srcs)
    fails, _ = scan_directives(own_sources)
    if fails.get(kind.value):
        return StepResult(
            spec,
            passed=False,
            log=f"{target.name} {kind.value}: FAIL:{kind.value} directive present",
        )
    if kind in CONFLICT_SENSITIVE_STEPS:
        closure_paths = list(target.srcs)
        for dep in sorted(graph.transitive_deps(target.name)):
            closure_paths.extend(graph.target(dep).srcs)
        _, conflicts = scan_directives(_sources(snapshot, closure_paths))
        colliding = sorted(
            token for token, count in conflicts.items() if count >= 2
        )
        if colliding:
            return StepResult(
                spec,
                passed=False,
                log=(
                    f"{target.name} {kind.value}: conflicting tokens "
                    + ", ".join(colliding)
                ),
            )
    return StepResult(spec, passed=True, log=f"{target.name} {kind.value}: ok")
