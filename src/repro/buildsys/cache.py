"""The artifact cache: step results keyed by target hash x step kind.

Because an Algorithm-1 hash covers a target's whole transitive input
closure, ``(hash, step kind)`` fully determines a hermetic step's outcome
— so a hit is always sound to reuse, failures included.  This cache is
the paper's minimal-build-step mechanism (section 6.2): a speculative
build of ``H ⊕ S ⊕ C`` re-derives the same hashes for every target whose
inputs a parent speculation already built, and those steps become hits
instead of work.

Eviction is LRU with a configurable capacity so long simulations hold
memory steady; :class:`CacheStats` feeds the cache-effectiveness
experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.buildsys.steps import StepResult
from repro.types import StepKind

#: Default LRU capacity — plenty for every simulation in the repo while
#: still bounding a pathological run.
DEFAULT_CAPACITY = 1 << 16


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ArtifactCache:
    """LRU map from ``(target hash, step kind)`` to :class:`StepResult`."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        # Each entry stores both spellings of the result — (un-cached as
        # put, cached-marked as get returns) — so a hit hands back a stored
        # object instead of allocating a dataclass copy per lookup.
        self._entries: "OrderedDict[Tuple[str, StepKind], Tuple[StepResult, StepResult]]" = (
            OrderedDict()
        )
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str, kind: StepKind) -> Optional[StepResult]:
        """The cached result, marked ``cached=True``, or None on a miss."""
        key = (digest, kind)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry[1]

    def put(self, digest: str, kind: StepKind, result: StepResult) -> None:
        """Store one step result (stored un-cached; ``get`` adds the mark)."""
        key = (digest, kind)
        stored = result if not result.cached else replace(result, cached=False)
        self._entries[key] = (stored, replace(stored, cached=True))
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def items(self):
        """Live entries in LRU order (oldest first), un-cached spelling.

        Yields ``((digest, kind), result)`` pairs; re-``put``-ting them in
        order into an empty cache reproduces both contents and eviction
        order, which is how journal snapshots persist cache warmth.
        """
        for key, (stored, _cached) in self._entries.items():
            yield key, stored

    def clear(self) -> None:
        """Drop all entries; counters keep accumulating."""
        self._entries.clear()
