"""Build targets and ``//package:name`` label parsing.

A :class:`Target` is a normalized, immutable build-graph node: sources and
dependencies are deduplicated and sorted, and the step list is reordered
into the canonical pipeline order of :data:`repro.types.DEFAULT_STEP_ORDER`.
Normalizing here means every downstream consumer (hashing, structure
comparison, rendering) sees one canonical form per declaration, so
semantically identical BUILD files always produce identical graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.types import DEFAULT_STEP_ORDER, Path, StepKind, TargetName

#: Steps a target runs when its BUILD declaration does not list any.
DEFAULT_STEPS: Tuple[StepKind, ...] = (StepKind.COMPILE, StepKind.UNIT_TEST)

_STEP_RANK = {kind: index for index, kind in enumerate(DEFAULT_STEP_ORDER)}


def _split_label(name: object) -> Tuple[str, str]:
    """Split ``//package:short`` into its parts, validating the shape."""
    if not isinstance(name, str):
        raise ValueError(f"target label must be a string, got {name!r}")
    if not name.startswith("//"):
        raise ValueError(f"target label must start with '//': {name!r}")
    body = name[2:]
    package, colon, short = body.partition(":")
    if not colon:
        raise ValueError(f"target label must contain ':': {name!r}")
    if not short or ":" in short:
        raise ValueError(f"malformed target short name in {name!r}")
    if package.startswith("/") or package.endswith("/"):
        raise ValueError(f"malformed package in {name!r}")
    return package, short


def target_package(name: TargetName) -> str:
    """The package part of a label: ``//a/b:c`` -> ``a/b``."""
    return _split_label(name)[0]


def target_short_name(name: TargetName) -> str:
    """The short-name part of a label: ``//a/b:c`` -> ``c``."""
    return _split_label(name)[1]


@dataclass(frozen=True)
class Target:
    """One build target: label, sources, dependencies, and build steps.

    ``srcs`` are snapshot paths (already package-prefixed — the loader does
    that), ``deps`` are full target labels, and ``steps`` defaults to
    compile + unit test when not declared.
    """

    name: TargetName
    srcs: Tuple[Path, ...] = ()
    deps: Tuple[TargetName, ...] = ()
    steps: Optional[Tuple[StepKind, ...]] = None

    def __post_init__(self) -> None:
        _split_label(self.name)

        srcs = tuple(sorted(dict.fromkeys(self.srcs)))
        for src in srcs:
            if not isinstance(src, str) or not src:
                raise ValueError(f"{self.name}: srcs must be non-empty strings")

        deps = tuple(sorted(dict.fromkeys(self.deps)))
        for dep in deps:
            _split_label(dep)
            if dep == self.name:
                raise ValueError(f"{self.name} cannot depend on itself")

        raw_steps = DEFAULT_STEPS if self.steps is None else tuple(self.steps)
        for step in raw_steps:
            if not isinstance(step, StepKind):
                raise ValueError(f"{self.name}: unknown step {step!r}")
        steps = tuple(sorted(set(raw_steps), key=_STEP_RANK.__getitem__))

        object.__setattr__(self, "srcs", srcs)
        object.__setattr__(self, "deps", deps)
        object.__setattr__(self, "steps", steps)

    @property
    def package(self) -> str:
        return target_package(self.name)

    @property
    def short_name(self) -> str:
        return target_short_name(self.name)

    def definition(self) -> Tuple:
        """The target's structural identity (everything but file contents).

        Two snapshots whose graphs agree on every target's definition have
        the same build-graph *structure* in the section-5.2 sense, which is
        what gates the conflict analyzer's name-intersection fast path.
        """
        return (self.name, self.srcs, self.deps, self.steps)

    def with_deps(self, deps: Sequence[TargetName]) -> "Target":
        """A copy of this target with a different dependency list."""
        return Target(self.name, srcs=self.srcs, deps=tuple(deps), steps=self.steps)
