"""Affected-target delta sets and the Equation-6 conflict test.

The paper's delta ``δ_{H⊕C}`` is the set of (target name, target hash)
pairs whose hash after applying change ``C`` differs from the hash at HEAD
(newly added targets count — they have no HEAD hash).  Equation 6 then
declares two changes conflicting exactly when composing both produces some
hash neither produced alone::

    conflict(Ci, Cj)  <=>  δ_{H⊕Ci⊕Cj} != δ_{H⊕Ci} ∪ δ_{H⊕Cj}

The hash side of the pairs is what makes this sharper than comparing
affected *names*: Figure 8's trap — disjoint name sets that still
interact through a new dependency edge — shows up as the same name
carrying a third, previously unseen hash in the combined delta.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Set

from repro.buildsys.graph import BuildGraph
from repro.buildsys.hashing import TargetHasher
from repro.buildsys.loader import load_build_graph
from repro.types import AffectedTarget, Path, TargetName

Delta = FrozenSet[AffectedTarget]


def affected_targets(
    base_snapshot: Mapping[Path, str],
    changed_snapshot: Mapping[Path, str],
    base_graph: Optional[BuildGraph] = None,
    changed_graph: Optional[BuildGraph] = None,
) -> Delta:
    """``δ`` between two snapshots: targets whose hash changed or appeared.

    Pre-loaded graphs can be passed to avoid re-parsing BUILD files when the
    caller (e.g. the conflict analyzer) already has them.
    """
    base_graph = base_graph if base_graph is not None else load_build_graph(base_snapshot)
    changed_graph = (
        changed_graph if changed_graph is not None else load_build_graph(changed_snapshot)
    )
    base_hashes = TargetHasher(base_graph, base_snapshot).all_hashes()
    changed_hashes = TargetHasher(changed_graph, changed_snapshot).all_hashes()
    return frozenset(
        AffectedTarget(name, digest)
        for name, digest in changed_hashes.items()
        if base_hashes.get(name) != digest
    )


def delta_from_dirty(
    base_hashes: Mapping[TargetName, str],
    hashes: Mapping[TargetName, str],
    dirty_closure: Set[TargetName],
) -> Delta:
    """``δ`` when only ``dirty_closure`` targets could have changed.

    Equivalent to diffing the full hash maps — targets outside the closure
    carry their seed hash verbatim, so they can never differ — but costs
    O(closure) instead of O(graph).
    """
    return frozenset(
        AffectedTarget(name, hashes[name])
        for name in dirty_closure
        if name in hashes and base_hashes.get(name) != hashes[name]
    )


def delta_names(delta: Delta) -> Set[TargetName]:
    """Just the target names of a delta (the fast-path comparand)."""
    return {item.name for item in delta}


def delta_as_dict(delta: Delta) -> Dict[TargetName, str]:
    """A delta as a name-to-hash dict (for reporting and storage)."""
    return {item.name: item.digest for item in delta}


def deltas_union(*deltas: Delta) -> Delta:
    """The union of any number of delta sets."""
    return frozenset().union(*deltas)


def equation6_conflict(delta_i: Delta, delta_j: Delta, delta_ij: Delta) -> bool:
    """Equation 6: do the changes interact beyond their separate effects?"""
    return delta_ij != deltas_union(delta_i, delta_j)
