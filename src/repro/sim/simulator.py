"""The simulation driver.

Wires a :class:`~repro.planner.planner.PlannerEngine` to an event queue:
arrivals submit changes, completions feed back into the planner, and the
planner re-plans after every batch of same-timestamp events.  Aborted
builds have their completion events cancelled; restarted builds get fresh
ones.  The run drains until every submitted change is decided (or a
safety horizon trips), then summarizes turnaround and throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.changes.change import Change
from repro.errors import SimulationError
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.planner.controller import BuildController
from repro.planner.planner import Decision, PlannerEngine
from repro.planner.workers import WorkerPool
from repro.sim.events import EventHandle, EventQueue
from repro.types import BuildKey, ChangeId, ChangeState


@dataclass
class SimulationResult:
    """Everything the evaluation section needs from one run."""

    strategy_name: str
    workers: int
    changes_submitted: int
    changes_committed: int
    changes_rejected: int
    makespan_minutes: float
    arrival_window_minutes: float
    turnarounds: Dict[ChangeId, float]
    decisions: List[Decision]
    utilization: float
    builds_started: int
    builds_aborted: int
    builds_completed: int
    build_minutes: float
    wasted_minutes: float
    #: Full-stack runs only: build steps executed vs eliminated (zero in
    #: label mode, where builds carry no step counts).
    steps_executed: int = 0
    steps_cached: int = 0

    @property
    def throughput_per_hour(self) -> float:
        """Committed changes per hour of makespan."""
        if self.makespan_minutes <= 0:
            return 0.0
        return self.changes_committed / (self.makespan_minutes / 60.0)

    def turnaround_values(self) -> List[float]:
        return list(self.turnarounds.values())


class Simulation:
    """One end-to-end run of a strategy over a change stream."""

    def __init__(
        self,
        strategy,
        controller: BuildController,
        workers: int,
        conflict_predicate: Callable[[Change, Change], bool],
        max_minutes: float = 60.0 * 24 * 365,
        epoch_minutes: float = 2.0,
        recorder: Recorder = NULL_RECORDER,
        eager_replan: bool = False,
    ) -> None:
        """``epoch_minutes`` is the planner's re-selection cadence (the
        paper's planner "contacts the speculation engine on every epoch");
        completions still decide changes immediately.

        ``eager_replan`` replans after *every* event batch instead of
        rate-limiting to the epoch cadence.  The planner's input
        fingerprint makes no-op replans near-free, so this trades the
        tick machinery for instant reaction to arrivals and completions;
        the default keeps the paper's fixed-epoch behaviour (and the
        figure reproductions bit-identical)."""
        if epoch_minutes <= 0:
            raise ValueError("epoch_minutes must be positive")
        self.recorder = recorder
        self.planner = PlannerEngine(
            strategy=strategy,
            controller=controller,
            workers=WorkerPool(workers),
            conflict_predicate=conflict_predicate,
            recorder=recorder,
        )
        self._max_minutes = max_minutes
        self._epoch_minutes = epoch_minutes
        self._eager_replan = eager_replan
        self._events = EventQueue()
        self._completion_handles: Dict[BuildKey, EventHandle] = {}
        self._next_plan_at = 0.0
        self._tick_scheduled = False
        self._now = 0.0
        recorder.bind_clock(lambda: self._now)

    def run(self, stream: Sequence[Tuple[float, Change]]) -> SimulationResult:
        """Simulate a (time, change) stream to drain and summarize it."""
        ordered = sorted(stream, key=lambda item: item[0])
        for arrival_time, change in ordered:
            self._events.push(arrival_time, ("arrival", change))
        arrival_window = ordered[-1][0] - ordered[0][0] if ordered else 0.0

        now = 0.0
        last_decision_at = 0.0
        first_arrival = ordered[0][0] if ordered else 0.0
        while self._events:
            handle = self._events.pop()
            assert handle is not None
            now = handle.time
            self._now = now
            if now > self._max_minutes:
                raise SimulationError(
                    f"simulation exceeded max horizon {self._max_minutes} min"
                )
            batch = [handle]
            while self._events.peek_time() == now:
                next_handle = self._events.pop()
                assert next_handle is not None
                batch.append(next_handle)
            decided_now = False
            for event in batch:
                kind, payload = event.payload
                if kind == "arrival":
                    self.planner.submit(payload, now)
                elif kind == "completion":
                    self._completion_handles.pop(payload, None)
                    decisions = self.planner.complete(payload, now)
                    if decisions:
                        decided_now = True
                elif kind == "tick":
                    self._tick_scheduled = False
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {kind!r}")
            if decided_now:
                last_decision_at = now
            self._maybe_replan(now)

        if self.recorder.enabled:
            self.planner.finish_trace(now)
        return self._summarize(now, max(0.0, last_decision_at - first_arrival),
                               arrival_window)

    def _maybe_replan(self, now: float) -> None:
        """Replan at most once per epoch; otherwise schedule a tick."""
        if self._eager_replan:
            # Every event batch replans; unchanged-input epochs are
            # answered by the planner's fingerprint without touching the
            # strategy, so no tick events are needed at all.
            self._replan(now)
            return
        if now >= self._next_plan_at:
            self._replan(now)
            self._next_plan_at = now + self._epoch_minutes
            return
        # Work may be waiting for the next epoch; make sure one arrives.
        if not self._tick_scheduled and (
            self.planner.pending_count() > 0 or self.planner.workers.busy > 0
        ):
            self._events.push(self._next_plan_at, ("tick", None))
            self._tick_scheduled = True

    def _replan(self, now: float) -> None:
        result = self.planner.plan(now)
        for key in result.aborted:
            handle = self._completion_handles.pop(key, None)
            if handle is not None:
                self._events.cancel(handle)
        for scheduled in result.started:
            handle = self._events.push(
                now + scheduled.duration, ("completion", scheduled.key)
            )
            self._completion_handles[scheduled.key] = handle

    def _summarize(
        self, now: float, makespan: float, arrival_window: float
    ) -> SimulationResult:
        ledger = self.planner.ledger
        turnarounds: Dict[ChangeId, float] = {}
        committed = rejected = 0
        for record in ledger.decided():
            if record.turnaround is not None:
                turnarounds[record.change_id] = record.turnaround
            if record.state is ChangeState.COMMITTED:
                committed += 1
            elif record.state is ChangeState.REJECTED:
                rejected += 1
        stats = self.planner.stats
        return SimulationResult(
            strategy_name=getattr(self.planner.strategy, "name", "strategy"),
            workers=self.planner.workers.capacity,
            changes_submitted=len(ledger),
            changes_committed=committed,
            changes_rejected=rejected,
            makespan_minutes=makespan,
            arrival_window_minutes=arrival_window,
            turnarounds=turnarounds,
            decisions=self.planner.decisions(),
            utilization=self.planner.workers.utilization(now) if now > 0 else 0.0,
            builds_started=stats.builds_started,
            builds_aborted=stats.builds_aborted,
            builds_completed=stats.builds_completed,
            build_minutes=stats.build_minutes,
            wasted_minutes=stats.wasted_minutes,
            steps_executed=stats.steps_executed,
            steps_cached=stats.steps_cached,
        )
