"""Build-duration distributions shaped like the paper's Figure 9.

Figure 9 plots the build-duration CDF for the iOS and Android monorepos:
a median around half an hour with a tail reaching ~120 minutes, and
near-identical shapes for both platforms.  A clipped log-normal matches
that shape; the platform presets below pin the median and P90.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class BuildDurationModel:
    """Clipped log-normal build durations, in minutes."""

    median: float = 27.0
    p90: float = 60.0
    minimum: float = 4.0
    maximum: float = 120.0

    def __post_init__(self) -> None:
        if not 0 < self.median < self.p90:
            raise ValueError("need 0 < median < p90")
        if not 0 < self.minimum < self.maximum:
            raise ValueError("need 0 < minimum < maximum")

    @property
    def mu(self) -> float:
        return math.log(self.median)

    @property
    def sigma(self) -> float:
        # P90 of lognormal: exp(mu + 1.2816 sigma).
        return math.log(self.p90 / self.median) / 1.2815515655446004

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one duration (or ``size`` of them), clipped to the range."""
        draws = rng.lognormal(self.mu, self.sigma, size=size)
        return np.clip(draws, self.minimum, self.maximum) if size is not None else float(
            min(self.maximum, max(self.minimum, draws))
        )

    def cdf(self, minutes: float) -> float:
        """P(duration <= minutes) of the *unclipped* log-normal core."""
        if minutes <= self.minimum:
            return 0.0
        if minutes >= self.maximum:
            return 1.0
        z = (math.log(minutes) - self.mu) / self.sigma
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    def cdf_series(self, grid: Sequence[float]) -> List[float]:
        """CDF evaluated on a grid, for the Figure 9 reproduction."""
        return [self.cdf(x) for x in grid]


#: Platform presets: the two monorepos in Figure 9 have near-identical
#: CDFs; Android's is very slightly faster.
IOS_DURATIONS = BuildDurationModel(median=28.0, p90=62.0)
ANDROID_DURATIONS = BuildDurationModel(median=26.0, p90=58.0)
