"""Arrival processes for change streams.

The paper replays recorded changes "at different rates (100, 200, 300,
400 and 500 changes per hour)", keeping inter-arrival times fixed per
rate.  Both a deterministic fixed-rate process and a Poisson process are
provided; the evaluation uses Poisson by default (hour-scale production
arrivals are well approximated by it) with the deterministic variant as a
low-variance alternative for tests.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np


def fixed_rate_arrivals(
    rate_per_hour: float, count: int, start: float = 0.0
) -> List[float]:
    """``count`` arrival times (minutes) at exactly ``rate_per_hour``."""
    if rate_per_hour <= 0:
        raise ValueError("rate must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    gap = 60.0 / rate_per_hour
    return [start + gap * index for index in range(count)]


def poisson_arrivals(
    rate_per_hour: float,
    count: int,
    rng: Optional[np.random.Generator] = None,
    start: float = 0.0,
) -> List[float]:
    """``count`` Poisson arrival times (minutes) at ``rate_per_hour``."""
    if rate_per_hour <= 0:
        raise ValueError("rate must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    mean_gap = 60.0 / rate_per_hour
    gaps = rng.exponential(mean_gap, size=count)
    return list(start + np.cumsum(gaps))
