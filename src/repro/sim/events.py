"""The event queue: a cancellable min-heap of timed callbacks.

Cancellation is lazy (the heap entry is tombstoned), which keeps both
``push`` and ``cancel`` O(log n) — important because every aborted
speculative build cancels its completion event.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass
class EventHandle:
    """Returned by :meth:`EventQueue.push`; lets the owner cancel."""

    time: float
    seq: int
    payload: Any
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Min-heap of (time, seq) ordered events with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, payload: Any) -> EventHandle:
        """Schedule a payload at an absolute time."""
        handle = EventHandle(time=time, seq=next(self._seq), payload=payload)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (idempotent)."""
        if not handle.cancelled:
            handle.cancel()
            self._live -= 1

    def pop(self) -> Optional[EventHandle]:
        """Earliest live event, or ``None`` when empty."""
        while self._heap:
            _, _, handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                self._live -= 1
                return handle
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without popping it."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None
