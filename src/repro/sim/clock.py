"""A simulated clock that only moves forward."""

from __future__ import annotations

from repro.errors import ClockError


class Clock:
    """Monotonically advancing simulated time (minutes)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move to an absolute time; going backwards raises."""
        if timestamp < self._now:
            raise ClockError(f"cannot rewind clock {self._now} -> {timestamp}")
        self._now = float(timestamp)
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move forward by a non-negative delta."""
        if delta < 0:
            raise ClockError(f"negative delta {delta}")
        return self.advance_to(self._now + delta)
