"""Discrete-event simulation of SubmitQueue and its baselines.

Replaces the paper's datacenter replay (section 8.1): changes are ingested
at controlled rates, builds occupy workers for sampled durations shaped
like the Figure-9 CDF, and the planner reacts to every arrival and
completion.  Time is in **minutes** throughout.
"""

from repro.sim.clock import Clock
from repro.sim.events import EventHandle, EventQueue
from repro.sim.arrivals import fixed_rate_arrivals, poisson_arrivals
from repro.sim.durations import BuildDurationModel, ANDROID_DURATIONS, IOS_DURATIONS
from repro.sim.simulator import Simulation, SimulationResult

__all__ = [
    "ANDROID_DURATIONS",
    "BuildDurationModel",
    "Clock",
    "EventHandle",
    "EventQueue",
    "IOS_DURATIONS",
    "Simulation",
    "SimulationResult",
    "fixed_rate_arrivals",
    "poisson_arrivals",
]
