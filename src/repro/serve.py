"""The HTTP observability service: a live window onto a SubmitQueue.

The production SubmitQueue is operated through a Dropwizard REST service
with dashboards over greenness and per-change turnaround (section 3,
figure 3).  This module is the reproduction's equivalent — a stdlib-only
(:mod:`http.server`) front end that mounts the transport-agnostic
:class:`~repro.service.handlers.ApiHandlers` dicts and adds the
read-only operations surface:

* ``GET /healthz``  — liveness plus the headline queue/greenness bits;
* ``GET /metrics``  — Prometheus text from the obs registry;
* ``GET /state``    — queue depth, greenness, per-change status;
* ``GET /slo``      — rolling turnaround p50/p95/p99, speculation hit
  rate, worker utilization (:mod:`repro.obs.slo`);
* ``GET /trace``    — Chrome-trace JSON of the live tracer (open spans
  rendered up to the current sim clock);
* ``GET /queue``, ``GET /mainline``, ``GET /changes/<id>``,
  ``POST /changes``, ``POST /process`` — the ApiHandlers surface;
* ``POST /shutdown`` — stop the server (used by tests and CI smoke).

The HTTP layer is threaded (:class:`ThreadingHTTPServer`) but a single
lock serializes access to the underlying service: the core service is a
single-threaded state machine, and serializing at that seam is what
keeps every read a consistent snapshot.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.recorder import Recorder
from repro.service.api import SubmitQueueService
from repro.service.handlers import ApiHandlers

#: Rolling window the /slo endpoint aggregates over, in simulated minutes.
DEFAULT_SLO_WINDOW_MINUTES = 60.0


class ObservabilityServer:
    """One HTTP server bound to one live :class:`CoreService`."""

    def __init__(
        self,
        core,
        handlers: Optional[ApiHandlers] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        slo_window_minutes: float = DEFAULT_SLO_WINDOW_MINUTES,
    ) -> None:
        self.core = core
        self.recorder = core.recorder
        self.handlers = (
            handlers
            if handlers is not None
            else ApiHandlers(SubmitQueueService(core))
        )
        self.slo_window_minutes = slo_window_minutes
        self._lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, port), _RequestHandler)
        self._httpd.context = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` is called."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start_background(self) -> None:
        """Serve from a daemon thread (tests and drivers)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        self._httpd.server_close()

    # -- endpoint payloads ---------------------------------------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            return 200, {
                "ok": True,
                "status": "healthy",
                "clock_minutes": self.core.clock.now,
                "pending": self.core.planner.pending_count(),
                "green": self.core.repo.is_green(),
                "tracing": bool(self.recorder.enabled),
            }

    def metrics_text(self) -> Tuple[int, str]:
        with self._lock:
            return 200, self.recorder.prometheus_text()

    def state(self) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            queue = self.handlers.handle_queue()
            mainline = self.handlers.handle_mainline()
            changes = {
                change_id: self.handlers.handle_status(
                    {"change_id": change_id}
                )["status"]
                for change_id in sorted(self.core.planner.records)
            }
            return 200, {
                "ok": True,
                "clock_minutes": self.core.clock.now,
                "green": mainline["green"],
                "mainline_commits": self.core.repo.mainline_length(),
                "queue": {"depth": queue["depth"], "pending": queue["pending"]},
                "changes": changes,
            }

    def slo(self) -> Tuple[int, Dict[str, Any]]:
        if not self.recorder.enabled:
            return 503, {
                "ok": False,
                "error": "no recorder attached; run with tracing enabled",
            }
        from repro.obs.slo import SloAggregator  # lazy: pulls in numpy

        with self._lock:
            aggregator = SloAggregator(
                self.recorder.tracer,
                window_minutes=self.slo_window_minutes,
                worker_capacity=self.core.planner.workers.capacity,
            )
            payload = aggregator.snapshot()
        payload["ok"] = True
        return 200, payload

    def trace(self) -> Tuple[int, Dict[str, Any]]:
        if not self.recorder.enabled:
            return 503, {
                "ok": False,
                "error": "no recorder attached; run with tracing enabled",
            }
        with self._lock:
            return 200, self.recorder.tracer.snapshot_chrome_trace()

    def api(self, name: str, request: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        handler = getattr(self.handlers, f"handle_{name}")
        with self._lock:
            payload = handler(request)
        return int(payload.get("code", 200)), payload


class _RequestHandler(BaseHTTPRequestHandler):
    """Route table over the bound :class:`ObservabilityServer`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def context(self) -> ObservabilityServer:
        return self.server.context  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep smoke-test output clean; curl shows its own status

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return parsed if isinstance(parsed, dict) else None

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        context = self.context
        if path == "/healthz":
            self._send_json(*context.healthz())
        elif path == "/metrics":
            code, text = context.metrics_text()
            self._send_text(code, text, "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/state":
            self._send_json(*context.state())
        elif path == "/slo":
            self._send_json(*context.slo())
        elif path == "/trace":
            self._send_json(*context.trace())
        elif path == "/queue":
            self._send_json(*context.api("queue", {}))
        elif path == "/mainline":
            self._send_json(*context.api("mainline", {}))
        elif path.startswith("/changes/"):
            change_id = path[len("/changes/"):]
            self._send_json(*context.api("status", {"change_id": change_id}))
        else:
            self._send_json(404, {"ok": False, "error": f"no route {path}"})

    def do_POST(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0].rstrip("/")
        context = self.context
        if path == "/shutdown":
            self._send_json(200, {"ok": True, "status": "shutting down"})
            threading.Thread(target=context.shutdown, daemon=True).start()
            return
        body = self._read_json_body()
        if body is None:
            self._send_json(
                400, {"ok": False, "error": "malformed JSON body", "code": 400}
            )
            return
        if path == "/changes":
            self._send_json(*context.api("land", body))
        elif path == "/process":
            self._send_json(*context.api("process", body))
        else:
            self._send_json(404, {"ok": False, "error": f"no route {path}"})


# -- workload builders --------------------------------------------------------


def build_quickstart_service(
    changes: int = 24,
    drafts: int = 4,
    seed: int = 7,
    workers: int = 8,
    backend: Optional[str] = "process:2",
    step_wall_seconds: float = 0.0,
    recorder: Optional[Recorder] = None,
    batching: bool = False,
    queue_backend: Optional[str] = None,
):
    """A served-ready core service over the figure-12 shaped workload.

    Submits and pumps ``changes`` clean changes (populating the tracer,
    metrics, and decision history the read endpoints expose), then
    registers ``drafts`` more as landable drafts so ``POST /changes``
    has something to land.  ``batching`` swaps in the risk-aware
    batching strategy, so ``/slo`` grows its ``batching`` section and
    ``/metrics`` the ``risk_batch_*`` series.  ``queue_backend`` (e.g.
    ``"sharded:4"``) swaps in the partition-sharded queue + analyzer, so
    ``/slo`` grows its ``sharding`` section and ``/metrics`` the
    ``shard_*`` series.  Returns ``(core, handlers)``.
    """
    from repro.parallel.workload import mint_cell
    from repro.predictor.predictors import StaticPredictor
    from repro.service.core import CoreService, CoreServiceConfig
    from repro.vcs.repository import Repository

    predictor = StaticPredictor(success=0.9, conflict=0.05)
    if batching:
        from repro.strategies.risk_batch import RiskBatchStrategy

        strategy = RiskBatchStrategy(predictor)
    else:
        from repro.strategies.submitqueue import SubmitQueueStrategy

        strategy = SubmitQueueStrategy(predictor)
    files, batch = mint_cell(count=changes + drafts, seed=seed)
    recorder = recorder if recorder is not None else Recorder()
    core = CoreService(
        Repository(dict(files)),
        strategy,
        config=CoreServiceConfig(
            workers=workers,
            build_backend=backend,
            step_wall_seconds=step_wall_seconds,
            queue_backend=queue_backend,
        ),
        recorder=recorder,
    )
    for change in batch[:changes]:
        core.submit(change)
    core.pump()
    handlers = ApiHandlers(SubmitQueueService(core))
    for change in batch[changes:]:
        handlers.register_draft(change)
    return core, handlers


def build_journal_service(journal_dir: str, recorder: Optional[Recorder] = None):
    """Replay a journal into a served-ready core service.

    Recovery runs in verification mode (``attach=False``): the on-disk
    journal is left untouched and the recovered, fully replayed service
    — tracer and metrics populated by the replay itself — is what the
    endpoints expose.  Returns ``(core, handlers)``.
    """
    from repro.journal.recovery import recover

    recorder = recorder if recorder is not None else Recorder()
    report = recover(journal_dir, recorder=recorder, attach=False)
    core = report.service
    return core, ApiHandlers(SubmitQueueService(core))
