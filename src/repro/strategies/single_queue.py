"""Single queue à la Bors (section 2.2 / section 8).

"All non-independent changes are enqueued, and processed one by one, à la
Bors.  Independent changes, on the other hand, are processed in
parallel."

So there is exactly **one** global queue: any change that conflicts with
*some* pending change joins it and waits its strict turn — even behind
changes it does not directly conflict with.  Truly independent changes
(no conflict edge at all) build immediately in parallel.  Without the
conflict analyzer every change is non-independent and this collapses to
the pure Bors behaviour whose turnaround the paper projects at 20+ days
for a thousand daily changes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.planner.planner import PlannerView
from repro.strategies.base import Strategy
from repro.types import BuildKey


class SingleQueueStrategy(Strategy):
    """One global serial queue plus parallel independent changes."""

    name = "Single-Queue"

    def _decisive_key(self, view: PlannerView, change_id) -> Optional[BuildKey]:
        committed = set()
        for ancestor_id in view.ancestors.get(change_id, ()):
            verdict = view.decided.get(ancestor_id)
            if verdict is None:
                return None
            if verdict:
                committed.add(ancestor_id)
        return BuildKey(change_id, frozenset(committed))

    def select(self, view: PlannerView, budget: int) -> List[BuildKey]:
        selected: List[BuildKey] = []
        serial_head_taken = False
        for change in view.pending:
            if len(selected) >= budget:
                break
            if view.conflict_degree(change.change_id) == 0:
                # Independent: build (decisively) in parallel.
                key = self._decisive_key(view, change.change_id)
                if key is not None:
                    selected.append(key)
            elif not serial_head_taken:
                # Head of the single queue: only this one may build.
                serial_head_taken = True
                key = self._decisive_key(view, change.change_id)
                if key is not None:
                    selected.append(key)
        return selected
