"""Batching independent changes (paper section 10, future work).

"SubmitQueue performs all build steps of independent changes separately.
A better approach is to batch independent changes expected to succeed
together before running their build steps.  While this approach can lead
to better hardware utilization and lower cost, false prediction can
result in higher turnaround time."

This strategy implements that refinement on top of SubmitQueue selection:
pending changes that (a) conflict with nothing pending, (b) have no
undecided predecessors in their batch, and (c) the predictor deems likely
to succeed (``p_success >= confidence``) are grouped into combined builds
of up to ``batch_size``.  Everything else falls back to ordinary
SubmitQueue speculation.  A failed combined build simply dissolves the
group — members revert to individual decisive builds, paying the
turnaround penalty the paper predicts for mispredictions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.changes.change import Change
from repro.planner.planner import Decision, PlannerView
from repro.predictor.predictors import Predictor
from repro.speculation.engine import SpeculationEngine
from repro.strategies.base import Strategy
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.types import BuildKey, ChangeId


class IndependentBatchStrategy(SubmitQueueStrategy):
    """SubmitQueue + combined builds for likely-green independent changes."""

    name = "SubmitQueue+batch"

    def __init__(
        self,
        predictor: Predictor,
        batch_size: int = 4,
        confidence: float = 0.9,
    ) -> None:
        super().__init__(predictor)
        if batch_size < 2:
            raise ValueError("batch_size must be at least 2")
        if not 0.0 <= confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        self.batch_size = batch_size
        self.confidence = confidence
        #: Change id -> the batch (ordered ids) it currently rides in.
        self._batch_of: Dict[ChangeId, List[ChangeId]] = {}
        #: Batches whose combined build failed: members go solo.
        self._dissolved: Set[ChangeId] = set()

    def _batchable(self, change: Change, view: PlannerView) -> bool:
        if change.change_id in self._dissolved:
            return False
        if view.conflict_degree(change.change_id) != 0:
            return False
        record = view.records.get(change.change_id)
        return self.predictor.p_success(change, record) >= self.confidence

    def select(self, view: PlannerView, budget: int) -> List[BuildKey]:
        # Re-form batches from scratch each epoch from batchable changes
        # whose group membership is stable (ids keep batches deterministic).
        batchable = [
            change for change in view.pending if self._batchable(change, view)
        ]
        self._batch_of = {}
        selected: List[BuildKey] = []
        for start in range(0, len(batchable), self.batch_size):
            group = batchable[start : start + self.batch_size]
            if len(group) < 2:
                break  # singleton tail: leave it to normal speculation
            ids = [c.change_id for c in group]
            for member in ids:
                self._batch_of[member] = ids
            selected.append(BuildKey(ids[-1], frozenset(ids[:-1])))
            if len(selected) >= budget:
                return selected

        batched_ids = set(self._batch_of)
        remaining_budget = budget - len(selected)
        if remaining_budget > 0:
            for key in super().select(view, remaining_budget + len(batched_ids)):
                if key.change_id in batched_ids:
                    continue  # its fate rides on the combined build
                selected.append(key)
                if len(selected) >= budget:
                    break
        return selected

    def interpret(
        self, key: BuildKey, success: bool, view: PlannerView, now: float
    ) -> Optional[List[Decision]]:
        group = self._batch_of.get(key.change_id)
        if group is None or group[-1] != key.change_id:
            return None
        if frozenset(group[:-1]) != key.assumed:
            return None  # stale build of a since-reshuffled batch
        for member in group:
            self._batch_of.pop(member, None)
        if success:
            return [
                Decision(member, True, now,
                         reason=f"independent batch of {len(group)} passed")
                for member in group
            ]
        # Misprediction: dissolve, members fall back to solo builds.
        self._dissolved.update(group)
        return []

    def on_decision(self, change: Change, decision: Decision,
                    view: PlannerView) -> None:
        super().on_decision(change, decision, view)
        self._dissolved.discard(change.change_id)
        self._batch_of.pop(change.change_id, None)
