"""SubmitQueue: probabilistic speculation with conflict trimming.

The paper's system: every epoch, rank all candidate builds by value
(Equations 1–5 over predictor probabilities) and run the top ``budget``.
The conflict graph has already trimmed each change's speculation space to
its conflicting ancestors, so independent changes cost one build each and
commit in parallel.
"""

from __future__ import annotations

from typing import List, Optional

from repro.changes.change import Change
from repro.planner.planner import Decision, PlannerView
from repro.predictor.predictors import LearnedPredictor, Predictor
from repro.speculation.engine import BenefitFunction, SpeculationEngine
from repro.strategies.base import Strategy
from repro.types import BuildKey


class SubmitQueueStrategy(Strategy):
    """Value-ordered speculative selection driven by a predictor."""

    name = "SubmitQueue"

    def __init__(
        self,
        predictor: Predictor,
        benefit: Optional[BenefitFunction] = None,
    ) -> None:
        self.predictor = predictor
        self.engine = SpeculationEngine(predictor, benefit=benefit)

    def bind_recorder(self, recorder) -> None:
        """Forward the planner-injected recorder to the speculation engine."""
        self.engine.bind_recorder(recorder)

    def invalidate_carry_over(self) -> None:
        """Drop the engine's incremental state (next epoch replans cold)."""
        self.engine.invalidate_carry_over()

    @property
    def stats(self):
        """The engine's incremental-effectiveness counters."""
        return self.engine.stats

    def select(self, view: PlannerView, budget: int) -> List[BuildKey]:
        scored = self.engine.select_builds(
            pending=view.pending,
            ancestors=view.ancestors,
            records=view.records,
            decided=view.decided,
            budget=budget,
            changes_by_id=view.changes_by_id,
        )
        return [build.key for build in scored]

    def on_decision(self, change: Change, decision: Decision,
                    view: PlannerView) -> None:
        # Keep the learned predictor's developer history current; static
        # and oracle predictors have no feedback surface.
        if isinstance(self.predictor, LearnedPredictor):
            self.predictor.observe_outcome(change, decision.committed)
