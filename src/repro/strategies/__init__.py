"""Scheduling strategies: SubmitQueue and every baseline from section 8.

Each strategy answers one question every epoch: *which builds are worth a
worker right now?*  All of them run on the shared
:class:`~repro.planner.planner.PlannerEngine`, so measured differences
come from the selection policy alone — exactly how the paper's evaluation
compares them.

* :class:`SubmitQueueStrategy` — probabilistic speculation (learned or
  supplied predictor) over the conflict-trimmed speculation graph.
* :class:`OracleStrategy` — perfect foresight; schedules exactly the n
  decisive builds.  Normalization baseline.
* :class:`SpeculateAllStrategy` — assumes every outcome is a coin flip and
  fans out over the whole speculation graph (section 4.1).
* :class:`OptimisticStrategy` — Zuul-style: assume every pending
  predecessor succeeds; abort and restack on failure.
* :class:`SingleQueueStrategy` — Bors-style: one decisive build at a time
  per conflict component; independent components run in parallel.
* :class:`BatchStrategy` — Chromium commit-queue-style batches with
  bisection on failure.
* :class:`RiskBatchStrategy` — SubmitQueue plus jointly-low-risk
  speculative batches with culprit bisection; commits stay per-change
  (shippable commits, not shippable batches).
"""

from repro.strategies.base import Strategy
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.strategies.oracle import OracleStrategy
from repro.strategies.speculate_all import SpeculateAllStrategy
from repro.strategies.optimistic import OptimisticStrategy
from repro.strategies.single_queue import SingleQueueStrategy
from repro.strategies.batch import BatchStrategy
from repro.strategies.independent_batch import IndependentBatchStrategy
from repro.strategies.risk_batch import RiskBatchStrategy
from repro.strategies.reordering import ReorderingSubmitQueueStrategy

__all__ = [
    "BatchStrategy",
    "IndependentBatchStrategy",
    "ReorderingSubmitQueueStrategy",
    "OptimisticStrategy",
    "RiskBatchStrategy",
    "OracleStrategy",
    "SingleQueueStrategy",
    "SpeculateAllStrategy",
    "Strategy",
    "SubmitQueueStrategy",
]
