"""Speculate-all: fan out over every possible outcome (section 4.1).

"The fastest and most expensive approach is to speculate on all possible
outcomes for every pending change", i.e. run the whole speculation tree:
``2^n - 1`` builds for ``n`` conflicting pending changes, assuming every
build succeeds or fails with probability 0.5.

Selection walks the tree exactly as Figure 5 draws it — change by change
in queue order, all outcome subsets per change — so a worker budget of W
is exhausted by roughly the first ``log2(W)`` mutually-conflicting
changes.  That is why the paper finds the approach insensitive to adding
workers on deep speculation graphs (section 8.3): the exponential
frontier of the oldest few changes swallows any fleet.
"""

from __future__ import annotations

import itertools
from typing import List

from repro.planner.planner import PlannerView
from repro.strategies.base import Strategy
from repro.types import BuildKey


class SpeculateAllStrategy(Strategy):
    """Breadth-first over the full speculation tree, oldest change first."""

    name = "Speculate-all"

    def select(self, view: PlannerView, budget: int) -> List[BuildKey]:
        decided = view.decided
        selected: List[BuildKey] = []
        for change in view.pending:
            if len(selected) >= budget:
                break
            ancestors = view.ancestors.get(change.change_id, ())
            known_committed = frozenset(
                a for a in ancestors if decided.get(a, False)
            )
            pending_ancestors = [a for a in ancestors if a not in decided]
            # All 2^k outcome subsets, smallest stacks first (the shallow
            # builds are the ones whose results resolve soonest).
            for size in range(len(pending_ancestors) + 1):
                if len(selected) >= budget:
                    break
                for subset in itertools.combinations(pending_ancestors, size):
                    selected.append(
                        BuildKey(
                            change.change_id,
                            frozenset(subset) | known_committed,
                        )
                    )
                    if len(selected) >= budget:
                        break
        return selected
