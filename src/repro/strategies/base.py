"""The strategy interface.

A strategy owns build selection; the planner owns everything else.  The
optional hooks let strategies maintain internal state (batching) or feed
online learning (SubmitQueue's developer-history features).
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.changes.change import Change
from repro.planner.planner import Decision, PlannerView
from repro.types import BuildKey


class Strategy(abc.ABC):
    """Selects the builds worth running, in priority order."""

    #: Human-readable name used in benchmark tables.
    name: str = "strategy"

    #: Whether :meth:`select` is a pure function of ``(view, budget)``.
    #: When True (every production strategy), the planner may answer an
    #: epoch whose input fingerprint is unchanged with the previous
    #: result without calling :meth:`select` at all.  Set to False in
    #: strategies whose selection depends on hidden state that moves per
    #: call (e.g. call-counting test doubles) to opt out of the skip.
    deterministic_select: bool = True

    @abc.abstractmethod
    def select(self, view: PlannerView, budget: int) -> List[BuildKey]:
        """The top-``budget`` builds to have running right now.

        Order encodes priority: the planner starts from the front and
        aborts running builds that are absent from the list.
        """

    # -- optional hooks (the planner duck-types these) ----------------------

    def on_submit(self, change: Change, view: PlannerView) -> None:
        """Called after a change is enqueued."""

    def on_decision(self, change: Change, decision: Decision,
                    view: PlannerView) -> None:
        """Called after a change commits or rejects."""

    def interpret(
        self, key: BuildKey, success: bool, view: PlannerView, now: float
    ) -> Optional[List[Decision]]:
        """Optionally translate a build completion into decisions.

        Return ``None`` to use the planner's default decisive-build rule
        (every strategy except batching does).
        """
        return None
