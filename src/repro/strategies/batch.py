"""Batching with bisection, à la Chromium's Commit Queue (section 2.2).

Pending changes are grouped into batches of ``batch_size`` in arrival
order.  One batch builds at a time; if the combined build passes, the
whole batch commits (shippable *batches*, not shippable commits — the
paper's critique).  If it fails, the batch splits in half and both halves
re-queue; a failing singleton is rejected.  Build keys stack the batch
members onto the committed ancestors, so outcomes come from the same
controller as every other strategy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set

from repro.planner.planner import Decision, PlannerView
from repro.strategies.base import Strategy
from repro.types import BuildKey, ChangeId


class BatchStrategy(Strategy):
    """One in-flight batch, bisected on failure."""

    name = "Batch"

    def __init__(self, batch_size: int = 8) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        #: Sub-batches awaiting their turn (produced by bisection).
        self._pending_groups: Deque[List[ChangeId]] = deque()
        self._active_group: Optional[List[ChangeId]] = None
        self._active_key: Optional[BuildKey] = None
        #: Ids already swept into some group (until decided).
        self._grouped: Set[ChangeId] = set()

    # -- selection ----------------------------------------------------------

    def select(self, view: PlannerView, budget: int) -> List[BuildKey]:
        if budget <= 0:
            return []
        self._refresh_active(view)
        if self._active_key is None:
            return []
        return [self._active_key]

    def _refresh_active(self, view: PlannerView) -> None:
        decided = view.decided
        # Drop decided members from bookkeeping.
        self._grouped = {cid for cid in self._grouped if cid not in decided}
        if self._active_group is not None:
            self._active_group = [
                cid for cid in self._active_group if cid not in decided
            ]
            if not self._active_group:
                self._active_group = None
                self._active_key = None
        if self._active_group is None:
            self._active_group = self._next_group(view)
            self._active_key = (
                self._key_for(self._active_group, view)
                if self._active_group is not None
                else None
            )

    def _next_group(self, view: PlannerView) -> Optional[List[ChangeId]]:
        while self._pending_groups:
            group = [
                cid for cid in self._pending_groups.popleft()
                if cid not in view.decided
            ]
            if group:
                return group
        fresh = [
            change.change_id
            for change in view.pending
            if change.change_id not in self._grouped
        ][: self.batch_size]
        if not fresh:
            return None
        self._grouped.update(fresh)
        return fresh

    def _key_for(self, group: List[ChangeId], view: PlannerView) -> BuildKey:
        last = group[-1]
        assumed: Set[ChangeId] = set(group[:-1])
        # Committed predecessors of any member are already on HEAD; fold
        # them in so the stacked snapshot matches what a rebase would see.
        for member in group:
            for ancestor_id in view.ancestors.get(member, ()):
                if view.decided.get(ancestor_id, False):
                    assumed.add(ancestor_id)
        assumed.discard(last)
        return BuildKey(last, frozenset(assumed))

    # -- interpretation -------------------------------------------------------

    def interpret(
        self, key: BuildKey, success: bool, view: PlannerView, now: float
    ) -> Optional[List[Decision]]:
        if key != self._active_key or self._active_group is None:
            return None
        group = self._active_group
        self._active_group = None
        self._active_key = None
        if success:
            return [
                Decision(cid, True, now, reason=f"batch of {len(group)} passed")
                for cid in group
            ]
        if len(group) == 1:
            self._grouped.discard(group[0])
            return [Decision(group[0], False, now, reason="singleton batch failed")]
        middle = len(group) // 2
        self._pending_groups.appendleft(group[middle:])
        self._pending_groups.appendleft(group[:middle])
        return []
