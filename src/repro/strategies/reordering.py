"""Change reordering (paper section 10, future work).

"The current version of SubmitQueue respects the order in which changes
are submitted to the system.  Therefore, small changes that are submitted
... after a large change with long turnaround time ... need to wait for
the large change to commit/abort. ... we plan to reorder non-independent
changes in order to improve throughput, and provide a better balance
between starvation and fairness."

This strategy extends SubmitQueue with a conservative reorder policy: a
pending change may jump a conflicting predecessor when the predictor is
confident the predecessor is doomed (``p_success <= doomed_below``) and
the jumper healthy (``p_success >= healthy_above``) — the case where
waiting is pure loss, since a rejected predecessor never constrains the
jumper anyway.  Fairness is preserved by capping how many changes may
jump any single predecessor (``max_jumps``), bounding starvation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.planner.planner import PlannerView
from repro.predictor.predictors import Predictor
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.types import ChangeId


class ReorderingSubmitQueueStrategy(SubmitQueueStrategy):
    """SubmitQueue + doomed-predecessor jumping."""

    name = "SubmitQueue+reorder"

    def __init__(
        self,
        predictor: Predictor,
        doomed_below: float = 0.3,
        healthy_above: float = 0.85,
        max_jumps: int = 3,
    ) -> None:
        super().__init__(predictor)
        if not 0.0 <= doomed_below <= healthy_above <= 1.0:
            raise ValueError("need 0 <= doomed_below <= healthy_above <= 1")
        self.doomed_below = doomed_below
        self.healthy_above = healthy_above
        self.max_jumps = max_jumps
        self._jumps_over: Dict[ChangeId, int] = defaultdict(int)

    def propose_reorders(self, view: PlannerView) -> List[Tuple[ChangeId, ChangeId]]:
        proposals: List[Tuple[ChangeId, ChangeId]] = []
        pending = {change.change_id: change for change in view.pending}
        for change in view.pending:
            record = view.records.get(change.change_id)
            if self.predictor.p_success(change, record) < self.healthy_above:
                continue
            for ancestor_id in list(view.ancestors.get(change.change_id, ())):
                ancestor = pending.get(ancestor_id)
                if ancestor is None:
                    continue  # already decided; nothing to jump
                if self._jumps_over[ancestor_id] >= self.max_jumps:
                    continue  # fairness: the doomed change keeps its turn
                ancestor_record = view.records.get(ancestor_id)
                if (
                    self.predictor.p_success(ancestor, ancestor_record)
                    <= self.doomed_below
                ):
                    proposals.append((ancestor_id, change.change_id))
                    self._jumps_over[ancestor_id] += 1
        return proposals
