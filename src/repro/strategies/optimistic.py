"""Optimistic execution à la Zuul (section 2.2).

"A pending change starts performing its build steps assuming that all the
pending changes that were submitted before it will succeed.  If a change
fails, then the builds that speculated on the success of the failed
change need to be aborted, and start again with new optimistic
speculation."

Note the *all*: Zuul's gate pipeline has no conflict analyzer, so every
change stacks on every pending change ahead of it, and one rejection
restarts the entire tail of the pipeline — which is why the paper finds
its throughput "limited by the number of contiguous changes that succeed"
(section 8.3) and why the conflict analyzer only buys it ~20 %
(section 8.4).

Each change's *ahead set* is frozen at submission.  Its build assumes
every ahead change that has not been rejected; commits ahead therefore do
not disturb the key (the stacked patch is simply part of HEAD now), while
a rejection ahead changes the key and the planner aborts and restacks —
the Zuul restart cascade.  Once everything ahead is decided the assumed
set contains only committed changes, and the planner's equivalent-build
rule turns the result into the change's decision.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.changes.change import Change
from repro.planner.planner import Decision, PlannerView
from repro.strategies.base import Strategy
from repro.types import BuildKey, ChangeId


class OptimisticStrategy(Strategy):
    """One all-success chain over the whole pending queue."""

    name = "Optimistic"

    def __init__(self) -> None:
        #: Pending changes ahead of each change, frozen at submission.
        self._ahead: Dict[ChangeId, FrozenSet[ChangeId]] = {}

    def on_submit(self, change: Change, view: PlannerView) -> None:
        self._ahead[change.change_id] = frozenset(
            other.change_id
            for other in view.pending
            if other.change_id != change.change_id
        )

    def on_decision(self, change: Change, decision: Decision,
                    view: PlannerView) -> None:
        self._ahead.pop(change.change_id, None)

    def select(self, view: PlannerView, budget: int) -> List[BuildKey]:
        decided = view.decided
        selected: List[BuildKey] = []
        for change in view.pending:
            if len(selected) >= budget:
                break
            ahead = self._ahead.get(change.change_id, frozenset())
            assumed = frozenset(
                a for a in ahead if decided.get(a, True)  # drop rejected only
            )
            selected.append(BuildKey(change.change_id, assumed))
        return selected
