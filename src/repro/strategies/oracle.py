"""The Oracle: perfect outcome foresight (section 8's normalization base).

With an :class:`~repro.predictor.predictors.OraclePredictor` every commit
probability is exactly 0 or 1, so the speculation engine assigns value 1
to each change's single decisive build and value 0 to everything else —
the Oracle schedules exactly the n builds that will ever be needed, never
aborts, and never wastes a worker.
"""

from __future__ import annotations

from typing import Optional

from repro.predictor.predictors import OraclePredictor
from repro.speculation.engine import BenefitFunction
from repro.strategies.submitqueue import SubmitQueueStrategy


class OracleStrategy(SubmitQueueStrategy):
    """SubmitQueue selection under a perfect predictor."""

    name = "Oracle"

    def __init__(self, benefit: Optional[BenefitFunction] = None) -> None:
        super().__init__(OraclePredictor(), benefit=benefit)
