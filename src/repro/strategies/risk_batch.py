"""Risk-aware speculative batching with culprit bisection.

SubmitQueue builds one speculation path per pending change, so at high
arrival rates the worker pool saturates and throughput flat-lines (the
Figure 12 ceiling).  This strategy extends SubmitQueue selection with
*speculative batches*: pending changes whose conflicting ancestors are
all decided and that the section-7.2 predictor scores as jointly
low-risk (per-member ``p_success`` confidence, pairwise ``p_conflict``
gating, a joint-success floor — :mod:`repro.speculation.batching`) are
stacked into one build whose value is the sum of the members'
commit-probability mass against a single build cost.

The per-change shippable-commit guarantee is preserved, unlike the
Chromium-style :class:`~repro.strategies.batch.BatchStrategy` the paper
critiques:

* a passing batch commits each member *individually*, in submission
  order (the passing-prefix order bisection also preserves);
* a failing batch is deterministically halved
  (:func:`~repro.speculation.batching.bisect_halves`) into sub-batches
  that rebuild next epoch; halves shrink strictly, so the recursion
  terminates at singletons, where the planner's ordinary decisive-build
  rule isolates each culprit exactly while every innocent member still
  lands.

Batch members never conflict with each other: eligibility requires every
conflicting ancestor decided, and two pending changes that conflict
always have one as the other's ancestor.  A batch build is therefore the
union of independent dirty cones — exactly the hardware-utilization win
the batching literature reports.

With ``enabled=False`` the strategy delegates everything to
:class:`~repro.strategies.submitqueue.SubmitQueueStrategy`; runs are
bit-identical to plain SubmitQueue (``fingerprint_digest`` unchanged),
which is how the batching-off golden pins stay byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.planner.planner import Decision, PlannerView
from repro.predictor.predictors import Predictor
from repro.speculation.batching import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MAX_PAIR_CONFLICT,
    DEFAULT_MEMBER_CONFIDENCE,
    DEFAULT_MIN_JOINT_SUCCESS,
    bisect_halves,
)
from repro.speculation.engine import BenefitFunction
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.types import BuildKey, ChangeId


@dataclass
class RiskBatchStats:
    """Batch-protocol counters for benches and ablation tables."""

    #: Batch builds (fresh or bisection sub-batch) that passed whole.
    batches_landed: int = 0
    #: Members committed via a passing batch build.
    members_committed: int = 0
    #: Batch builds that failed and were split into halves.
    bisections: int = 0
    #: Deepest bisection level reached (0 = a fresh batch).
    deepest_bisection: int = 0


class _BatchMetrics:
    """Hoisted recorder handles for the batch-protocol instrumentation."""

    __slots__ = ("landed", "members", "bisections", "size_hist", "depth_hist")

    def __init__(self, recorder: Recorder) -> None:
        self.landed = recorder.counter(
            "risk_batches_landed_total",
            "Speculative batch builds that passed whole.",
        )
        self.members = recorder.counter(
            "risk_batch_members_committed_total",
            "Changes committed via a passing batch build.",
        )
        self.bisections = recorder.counter(
            "risk_batch_bisections_total",
            "Failed batch builds split into bisection halves.",
        )
        self.size_hist = recorder.histogram(
            "risk_batch_size",
            "Members per resolved batch build.",
            buckets=(2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0),
        )
        self.depth_hist = recorder.histogram(
            "risk_batch_bisect_depth",
            "Bisection depth of each resolved batch build (0 = fresh).",
            buckets=(0.0, 1.0, 2.0, 3.0, 4.0, 6.0),
        )


class RiskBatchStrategy(SubmitQueueStrategy):
    """SubmitQueue + jointly-low-risk batches with culprit bisection."""

    name = "SubmitQueue+risk-batch"

    def __init__(
        self,
        predictor: Predictor,
        benefit: Optional[BenefitFunction] = None,
        enabled: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        member_confidence: float = DEFAULT_MEMBER_CONFIDENCE,
        max_pair_conflict: float = DEFAULT_MAX_PAIR_CONFLICT,
        min_joint_success: float = DEFAULT_MIN_JOINT_SUCCESS,
    ) -> None:
        super().__init__(predictor, benefit=benefit)
        if batch_size < 2:
            raise ValueError("batch_size must be at least 2")
        for knob, value in (
            ("member_confidence", member_confidence),
            ("max_pair_conflict", max_pair_conflict),
            ("min_joint_success", min_joint_success),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{knob} must be in [0, 1]")
        self.enabled = enabled
        self.batch_size = batch_size
        self.member_confidence = member_confidence
        self.max_pair_conflict = max_pair_conflict
        self.min_joint_success = min_joint_success
        self.batch_stats = RiskBatchStats()
        #: Batch builds scheduled by the last selection round:
        #: key -> (ordered members, bisection depth).  Rebuilt every epoch.
        self._groups: Dict[BuildKey, Tuple[Tuple[ChangeId, ...], int]] = {}
        #: Bisection halves awaiting (re)builds, FIFO, with their depth.
        self._bisect_queue: List[Tuple[Tuple[ChangeId, ...], int]] = []
        #: Members of failed batches: excluded from fresh batches so the
        #: bisection protocol (not regrouping) isolates the culprit.
        self._no_batch: Set[ChangeId] = set()
        #: Batch/bisect resolutions awaiting the journal drain.
        self._journal_events: List[Dict[str, object]] = []
        self._recorder: Recorder = NULL_RECORDER
        self._metrics: Optional[_BatchMetrics] = None

    def bind_recorder(self, recorder: Recorder) -> None:
        super().bind_recorder(recorder)
        self._recorder = recorder
        self._metrics = None

    # -- batch formation ------------------------------------------------------

    def _eligible(
        self, change_id: ChangeId, view: PlannerView, riding: Set[ChangeId]
    ) -> bool:
        """May this pending change join a fresh batch?

        All conflicting ancestors decided (so the batch build is decisive
        for the member — and, structurally, members never conflict with
        each other), not already riding in a scheduled batch, and not a
        member of a failed batch mid-bisection.
        """
        if change_id in riding or change_id in self._no_batch:
            return False
        decided = view.decided
        return all(
            ancestor in decided
            for ancestor in view.ancestors.get(change_id, ())
        )

    def _group_key(
        self, members: Sequence[ChangeId], view: PlannerView
    ) -> BuildKey:
        """The build key for a batch of ``members`` (submission order).

        The assumed set stacks the non-final members plus every member's
        *committed* conflicting ancestors — the same ancestors a decisive
        build would re-stack, so label-mode controllers see the conflicts
        that already landed and full-stack controllers re-apply patches
        the mainline merge tolerates.
        """
        assumed: Set[ChangeId] = set(members[:-1])
        decided = view.decided
        for member in members:
            for ancestor in view.ancestors.get(member, ()):
                if decided.get(ancestor, False):
                    assumed.add(ancestor)
        return BuildKey(members[-1], frozenset(assumed))

    def select(self, view: PlannerView, budget: int) -> List[BuildKey]:
        if not self.enabled:
            return super().select(view, budget)
        selected: List[BuildKey] = []
        seen: Set[BuildKey] = set()
        riding: Set[ChangeId] = set()
        pending_ids = {change.change_id for change in view.pending}

        # 0. In-flight batch builds keep their registration and stay
        # selected: replans happen on every arrival, and dropping a
        # running batch's group entry here would make its completion
        # uninterpretable (the planner would fall back to the default
        # decisive rule and strand the riding members).  Entries whose
        # build is no longer running (resolved, or aborted with members
        # decided elsewhere) are discarded — fresh planning below regroups
        # any still-pending members.
        running = view.running_keys()
        survivors = {
            key: entry
            for key, entry in self._groups.items()
            if key in running
            and all(cid in pending_ids for cid in entry[0])
        }
        self._groups = dict(survivors)
        surviving_members = {entry[0] for entry in survivors.values()}
        for key, (members, _depth) in survivors.items():
            riding.update(members)
            if key not in seen and len(selected) < budget:
                seen.add(key)
                selected.append(key)

        # 1. Live bisection sub-batches first: they carry failed-batch
        # members whose turnaround is already elevated.  Decided members
        # drop out; a half reduced to one member builds through the
        # planner's ordinary decisive rule (exact culprit isolation).
        open_halves: List[Tuple[Tuple[ChangeId, ...], int]] = []
        for members, depth in self._bisect_queue:
            live = tuple(cid for cid in members if cid in pending_ids)
            if not live:
                continue
            open_halves.append((live, depth))
            if live in surviving_members:
                continue  # this half's build is already in flight
            if len(live) == 1:
                key = self._group_key(live, view)  # == the decisive key
            else:
                key = self._group_key(live, view)
                self._groups[key] = (live, depth)
                riding.update(live)
            if key not in seen and len(selected) < budget:
                seen.add(key)
                selected.append(key)
        self._bisect_queue = open_halves

        # 2. Fresh jointly-low-risk batches over the eligible pending set.
        # Contention-gated: with free capacity for every pending change,
        # one-speculation-per-change (plain SubmitQueue) decides each
        # member faster than any batch could, so batches only form when
        # the queue is deeper than the worker pool — the saturated regime
        # where trading per-member latency for per-build throughput wins.
        if len(selected) < budget and len(view.pending) > budget:
            candidates = [
                change.change_id
                for change in view.pending
                if self._eligible(change.change_id, view, riding)
            ]
            plans = self.engine.plan_risk_batches(
                candidates,
                view.records,
                view.changes_by_id,
                batch_size=self.batch_size,
                member_confidence=self.member_confidence,
                max_pair_conflict=self.max_pair_conflict,
                min_joint_success=self.min_joint_success,
            )
            for plan in plans:
                if len(selected) >= budget:
                    break
                key = self._group_key(plan.members, view)
                if key in seen:
                    continue
                self._groups[key] = (plan.members, 0)
                riding.update(plan.members)
                seen.add(key)
                selected.append(key)

        # 3. Ordinary SubmitQueue speculation fills the remaining budget;
        # riding members' fates are decided by their batch build.
        if len(selected) < budget:
            headroom = budget - len(selected) + len(riding)
            for key in super().select(view, headroom):
                if key.change_id in riding or key in seen:
                    continue
                seen.add(key)
                selected.append(key)
                if len(selected) >= budget:
                    break
        return selected

    def scheduled_batch_members(self, key: BuildKey) -> Tuple[ChangeId, ...]:
        """Members riding in the scheduled batch build ``key`` (or ``()``).

        The planner threads this through the controller into
        :class:`~repro.parallel.payload.BuildRequest.batch_members` —
        outcome-neutral metadata for worker-side observability.
        """
        entry = self._groups.get(key)
        return entry[0] if entry is not None else ()

    # -- batch resolution -----------------------------------------------------

    def interpret(
        self, key: BuildKey, success: bool, view: PlannerView, now: float
    ) -> Optional[List[Decision]]:
        entry = self._groups.pop(key, None)
        if entry is None:
            return None  # not a batch build: planner default rule
        members, depth = entry
        if success:
            self._resolve(now, "landed", members, depth)
            reason = (
                f"risk batch of {len(members)} passed"
                if depth == 0
                else f"bisection sub-batch of {len(members)} passed"
            )
            # Submission order == stack order: the passing prefix commits
            # in the order the batch stacked it.  Members a concurrent
            # solo build already decided are skipped (stale no-ops).
            return [
                Decision(member, True, now, reason=reason)
                for member in members
                if member not in view.decided
            ]
        # Failure: someone in the batch is a culprit.  Halve
        # deterministically; halves rebuild next epoch, singletons fall
        # through to decisive builds.  Members never re-enter fresh
        # batches mid-bisection.
        first, second = bisect_halves(members)
        self._no_batch.update(members)
        self._bisect_queue.append((first, depth + 1))
        self._bisect_queue.append((second, depth + 1))
        self._resolve(now, "bisect", members, depth)
        return []

    def _resolve(
        self,
        now: float,
        kind: str,
        members: Tuple[ChangeId, ...],
        depth: int,
    ) -> None:
        """Account one batch-build resolution (stats, journal, recorder)."""
        if kind == "landed":
            self.batch_stats.batches_landed += 1
            self.batch_stats.members_committed += len(members)
        else:
            self.batch_stats.bisections += 1
        self.batch_stats.deepest_bisection = max(
            self.batch_stats.deepest_bisection, depth
        )
        self._journal_events.append(
            {
                "at": now,
                "kind": kind,
                "members": list(members),
                "depth": depth,
            }
        )
        if self._recorder.enabled:
            if self._metrics is None:
                self._metrics = _BatchMetrics(self._recorder)
            metrics = self._metrics
            if kind == "landed":
                metrics.landed.inc()
                metrics.members.inc(len(members))
            else:
                metrics.bisections.inc()
            metrics.size_hist.observe(float(len(members)))
            metrics.depth_hist.observe(float(depth))
            self._recorder.event(
                "batch",
                category="planner",
                track="service",
                at=now,
                kind=kind,
                size=len(members),
                depth=depth,
            )

    def drain_journal_events(self) -> List[Dict[str, object]]:
        """Batch resolutions since the last drain (service journal hook)."""
        events, self._journal_events = self._journal_events, []
        return events

    def on_decision(self, change, decision: Decision, view: PlannerView) -> None:
        super().on_decision(change, decision, view)
        self._no_batch.discard(change.change_id)
