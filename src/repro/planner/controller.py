"""Build controllers: outcome and duration of one speculative build.

Two fidelities behind one interface:

* :class:`LabelBuildController` — reads ground-truth labels and sampled
  durations; used by the large evaluation sweeps.  Minimal-build-step
  elimination shows up as a cost model: with elimination on, the build for
  ``H ⊕ S ⊕ C`` costs only ``C``'s own steps (prior builds covered ``S``);
  with it off, stacked changes' steps re-run and the build costs more.
* :class:`FullStackBuildController` — merges patches for real, loads
  build graphs, and executes synthetic steps through
  :class:`~repro.buildsys.executor.BuildExecutor`.  Elimination falls out
  of the shared :class:`~repro.buildsys.cache.ArtifactCache`: steps whose
  target hash was already built (by a parent speculation or an earlier
  epoch) are cache hits, and the duration model charges only executed
  steps.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.buildsys.cache import ArtifactCache
from repro.buildsys.executor import BuildExecutor
from repro.changes.change import Change
from repro.changes.truth import stack_outcome
from repro.errors import PatchConflictError
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.types import BuildKey, ChangeId
from repro.vcs.patch import squash
from repro.vcs.repository import Repository


@dataclass(frozen=True)
class BuildExecution:
    """What running one build costs and yields."""

    key: BuildKey
    success: bool
    duration: float
    steps_executed: int = 0
    steps_cached: int = 0
    failure_reason: str = ""


class BuildController(abc.ABC):
    """Interface the planner uses to run builds."""

    @abc.abstractmethod
    def execute(
        self, key: BuildKey, changes_by_id: Mapping[ChangeId, Change]
    ) -> BuildExecution:
        """Determine the build's outcome and duration.

        ``changes_by_id`` must contain the build's change and every change
        in its assumed set.
        """


class LabelBuildController(BuildController):
    """Ground-truth outcomes with a step-elimination cost model.

    ``stacking_overhead`` is the fraction of each stacked change's duration
    that re-runs when elimination is disabled (the paper's build controller
    "eliminates build steps that are being executed by prior builds";
    turning that off makes deep speculation proportionally costlier).
    """

    def __init__(
        self,
        step_elimination: bool = True,
        stacking_overhead: float = 0.35,
        default_duration: float = 30.0,
    ) -> None:
        if stacking_overhead < 0.0:
            raise ValueError("stacking_overhead must be non-negative")
        self.step_elimination = step_elimination
        self.stacking_overhead = stacking_overhead
        self.default_duration = default_duration

    def _duration_of(self, change: Change) -> float:
        if change.build_duration is not None:
            return change.build_duration
        return self.default_duration

    def execute(
        self, key: BuildKey, changes_by_id: Mapping[ChangeId, Change]
    ) -> BuildExecution:
        change = changes_by_id[key.change_id]
        assumed = [changes_by_id[cid] for cid in sorted(key.assumed)]
        success = stack_outcome(assumed + [change])
        duration = self._duration_of(change)
        if not self.step_elimination:
            duration += self.stacking_overhead * sum(
                self._duration_of(other) for other in assumed
            )
        return BuildExecution(
            key=key,
            success=success,
            duration=duration,
            failure_reason="" if success else "ground-truth failure",
        )


class FullStackBuildController(BuildController):
    """Real builds: merge patches, load graphs, execute synthetic steps.

    ``step_minutes`` converts executed step counts into simulated build
    duration; cached steps cost ``cached_step_minutes`` (near zero).
    The ``base_commit_id`` pins the HEAD the controller merges onto; the
    planner refreshes it as changes land.
    """

    def __init__(
        self,
        repo: Repository,
        cache: Optional[ArtifactCache] = None,
        step_minutes: float = 1.0,
        cached_step_minutes: float = 0.01,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self._repo = repo
        self.recorder = recorder
        self.executor = BuildExecutor(cache, recorder=recorder)
        self.step_minutes = step_minutes
        self.cached_step_minutes = cached_step_minutes
        self.base_commit_id = repo.head()

    def refresh_base(self) -> None:
        """Re-pin the merge base to the current mainline HEAD."""
        self.base_commit_id = self._repo.head()

    def on_commit(
        self, change: Change, changes_by_id: Mapping[ChangeId, Change]
    ) -> None:
        """Land a decided change on the mainline and re-pin the base.

        Called by the planner exactly when the change's decisive build
        succeeded, so the mainline stays green by construction.
        """
        if change.patch is None:
            raise ValueError(f"change {change.change_id} carries no patch")
        self._repo.commit_to_mainline(
            change.patch,
            message=change.description or change.change_id,
            author=change.developer_id,
            green=True,
        )
        self.refresh_base()
        if self.recorder.enabled:
            self.recorder.counter(
                "service_mainline_commits_total",
                "Changes landed on the mainline.",
            ).inc()
            self.recorder.event(
                "commit",
                category="service",
                track="service",
                change_id=change.change_id,
                commit_id=self.base_commit_id,
            )

    def execute(
        self, key: BuildKey, changes_by_id: Mapping[ChangeId, Change]
    ) -> BuildExecution:
        change = changes_by_id[key.change_id]
        assumed = [changes_by_id[cid] for cid in sorted(key.assumed)]
        base_snapshot = self._repo.snapshot(self.base_commit_id).to_dict()

        patches = []
        for other in assumed + [change]:
            if other.patch is None:
                raise ValueError(f"change {other.change_id} carries no patch")
            patches.append(other.patch)
        # Merge in submission order; a textual conflict fails the build the
        # same way a failed merge fails it in production.
        merged = dict(base_snapshot)
        try:
            for patch in patches:
                merged = patch.apply(merged)
        except PatchConflictError as exc:
            return BuildExecution(
                key=key,
                success=False,
                duration=self.step_minutes,
                failure_reason=f"merge conflict: {exc}",
            )

        report = self.executor.build_affected(
            base_snapshot, merged, stop_on_failure=True
        )
        duration = (
            report.steps_executed * self.step_minutes
            + report.steps_cached * self.cached_step_minutes
        )
        failure = report.first_failure()
        return BuildExecution(
            key=key,
            success=report.success,
            duration=max(duration, self.cached_step_minutes),
            steps_executed=report.steps_executed,
            steps_cached=report.steps_cached,
            failure_reason="" if failure is None else failure.log,
        )
