"""Build controllers: outcome and duration of one speculative build.

Two fidelities behind one interface:

* :class:`LabelBuildController` — reads ground-truth labels and sampled
  durations; used by the large evaluation sweeps.  Minimal-build-step
  elimination shows up as a cost model: with elimination on, the build for
  ``H ⊕ S ⊕ C`` costs only ``C``'s own steps (prior builds covered ``S``);
  with it off, stacked changes' steps re-run and the build costs more.
* :class:`FullStackBuildController` — merges patches for real, loads
  build graphs, and executes synthetic steps through
  :class:`~repro.buildsys.executor.BuildExecutor`.  Elimination falls out
  of the shared :class:`~repro.buildsys.cache.ArtifactCache`: steps whose
  target hash was already built (by a parent speculation or an earlier
  epoch) are cache hits, and the duration model charges only executed
  steps.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.buildsys.cache import ArtifactCache
from repro.buildsys.executor import BuildContext, BuildExecutor, BuildReport
from repro.buildsys.steps import StepResult, StepSpec
from repro.changes.change import Change
from repro.changes.truth import stack_outcome
from repro.errors import ParallelExecutionError, PatchConflictError
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.types import BuildKey, ChangeId, CommitId, TargetName
from repro.vcs.patch import Patch, squash
from repro.vcs.repository import Repository


@dataclass(frozen=True)
class BuildExecution:
    """What running one build costs and yields."""

    key: BuildKey
    success: bool
    duration: float
    steps_executed: int = 0
    steps_cached: int = 0
    failure_reason: str = ""
    #: Targets the build covered, in build order (empty for label-mode
    #: builds and merge conflicts).
    targets_built: Tuple[TargetName, ...] = ()


class BuildController(abc.ABC):
    """Interface the planner uses to run builds."""

    @abc.abstractmethod
    def execute(
        self, key: BuildKey, changes_by_id: Mapping[ChangeId, Change]
    ) -> BuildExecution:
        """Determine the build's outcome and duration.

        ``changes_by_id`` must contain the build's change and every change
        in its assumed set.
        """

    def execute_batch(
        self,
        keys: Sequence[BuildKey],
        changes_by_id: Mapping[ChangeId, Change],
        batch_members: Optional[Sequence[Sequence[ChangeId]]] = None,
    ) -> List[BuildExecution]:
        """Execute one epoch's selected builds, results in selection order.

        The default runs each build serially through :meth:`execute`;
        controllers with a parallel backend attached override this to fan
        the batch out while still *returning* in selection order — the
        planner's deterministic quiescent point.

        ``batch_members`` (aligned with ``keys`` when present) carries the
        speculative-batch membership riding on each build — metadata the
        base implementation ignores; outcomes never depend on it.
        """
        return [self.execute(key, changes_by_id) for key in keys]


class LabelBuildController(BuildController):
    """Ground-truth outcomes with a step-elimination cost model.

    ``stacking_overhead`` is the fraction of each stacked change's duration
    that re-runs when elimination is disabled (the paper's build controller
    "eliminates build steps that are being executed by prior builds";
    turning that off makes deep speculation proportionally costlier).
    """

    def __init__(
        self,
        step_elimination: bool = True,
        stacking_overhead: float = 0.35,
        default_duration: float = 30.0,
    ) -> None:
        if stacking_overhead < 0.0:
            raise ValueError("stacking_overhead must be non-negative")
        self.step_elimination = step_elimination
        self.stacking_overhead = stacking_overhead
        self.default_duration = default_duration

    def _duration_of(self, change: Change) -> float:
        if change.build_duration is not None:
            return change.build_duration
        return self.default_duration

    def execute(
        self, key: BuildKey, changes_by_id: Mapping[ChangeId, Change]
    ) -> BuildExecution:
        change = changes_by_id[key.change_id]
        assumed = [changes_by_id[cid] for cid in sorted(key.assumed)]
        success = stack_outcome(assumed + [change])
        duration = self._duration_of(change)
        if not self.step_elimination:
            duration += self.stacking_overhead * sum(
                self._duration_of(other) for other in assumed
            )
        return BuildExecution(
            key=key,
            success=success,
            duration=duration,
            failure_reason="" if success else "ground-truth failure",
        )


@dataclass
class ExecutorReuseStats:
    """Incremental-execution counters (see BENCH_exec.json)."""

    #: Root contexts built from scratch — O(repo) graph load + hashing.
    base_context_loads: int = 0
    #: Builds answered from a memoized base context.
    base_context_reuses: int = 0
    #: Base contexts advanced across a commit in O(delta) instead of reloaded.
    base_context_advances: int = 0
    #: Speculation-prefix cache hits (merged snapshot + hashes reused).
    prefix_hits: int = 0
    #: Prefix states derived because no cached ancestor covered them.
    prefix_misses: int = 0
    #: Target digests recomputed by incremental derivations.
    targets_rehashed: int = 0

    @property
    def prefix_hit_rate(self) -> float:
        lookups = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / lookups if lookups else 0.0


class _ExecutorMetrics:
    """Hoisted recorder handles for the incremental-execution counters."""

    __slots__ = ("base_context_reused", "prefix_hits", "prefix_misses")

    def __init__(self, recorder: Recorder) -> None:
        self.base_context_reused = recorder.counter(
            "executor_base_context_reused_total",
            "Builds served from a memoized per-base build context.",
        )
        self.prefix_hits = recorder.counter(
            "executor_prefix_hits_total",
            "Speculation-prefix cache hits (merged snapshot + hashes reused).",
        )
        self.prefix_misses = recorder.counter(
            "executor_prefix_misses_total",
            "Speculation-prefix derivations the cache could not serve.",
        )


class FullStackBuildController(BuildController):
    """Real builds: merge patches, load graphs, execute synthetic steps.

    ``step_minutes`` converts executed step counts into simulated build
    duration; cached steps cost ``cached_step_minutes`` (near zero).
    The ``base_commit_id`` pins the HEAD the controller merges onto; the
    planner refreshes it as changes land.

    With ``incremental=True`` (the default) execution reuses work across
    builds instead of recomputing both snapshot sides from scratch:

    * the base side (graph + Algorithm-1 hashes) is a
      :class:`~repro.buildsys.executor.BuildContext` memoized per mainline
      head and *advanced* in O(delta) when a change lands;
    * patches apply as copy-on-write overlays and rehash only the dirty
      reverse-dependency closure;
    * a speculation-prefix cache keyed by ``(base commit,
      frozenset(assumed))`` lets a build of ``H ⊕ S ⊕ C`` reuse the merged
      snapshot and hashes its parent build ``H ⊕ S`` derived — the paper's
      tree-structured step elimination applied at the snapshot/hash layer,
      not just the artifact layer.

    Outcomes, step counts, durations, and target order are bit-identical
    to ``incremental=False`` (enforced by a hypothesis property test).
    """

    #: Keep at most this many base contexts (mainline heads) memoized.
    BASE_CONTEXT_CAPACITY = 4
    #: Materialize the base snapshot into a plain dict once its overlay
    #: chain (one layer per landed commit) exceeds this depth.
    BASE_FLATTEN_DEPTH = 8

    def __init__(
        self,
        repo: Repository,
        cache: Optional[ArtifactCache] = None,
        step_minutes: float = 1.0,
        cached_step_minutes: float = 0.01,
        recorder: Recorder = NULL_RECORDER,
        incremental: bool = True,
        prefix_capacity: int = 128,
    ) -> None:
        if prefix_capacity <= 0:
            raise ValueError("prefix_capacity must be positive")
        self._repo = repo
        self.recorder = recorder
        self.executor = BuildExecutor(cache, recorder=recorder)
        self.step_minutes = step_minutes
        self.cached_step_minutes = cached_step_minutes
        self.base_commit_id = repo.head()
        self.incremental = incremental
        self.prefix_capacity = prefix_capacity
        self.stats = ExecutorReuseStats()
        self._metrics = _ExecutorMetrics(recorder) if recorder.enabled else None
        self._base_contexts: "OrderedDict[CommitId, BuildContext]" = OrderedDict()
        self._prefix_cache: "OrderedDict[Tuple[CommitId, FrozenSet[ChangeId]], BuildContext]" = (
            OrderedDict()
        )
        # Parallel-backend seam (see repro.parallel): None means every
        # build runs inline through execute() — the serial oracle.
        self._backend = None
        #: Outcome-neutral callable the backend invokes while waiting on
        #: in-flight worker results (the service's overlap hook).
        self.idle_hook = None
        #: Synthetic wall cost per hermetic step, forwarded to workers.
        self.step_wall_seconds = 0.0
        self._base_snapshot_memo: Optional[Tuple[CommitId, Dict]] = None
        #: Batches shipped to the backend but not yet merged back, in
        #: dispatch order: ``(backend token, keys, span_ids, sim now)``.
        self._pending_dispatches: List[
            Tuple[object, List[BuildKey], List[int], Optional[float]]
        ] = []

    def refresh_base(self) -> None:
        """Re-pin the merge base to the current mainline HEAD.

        Prefix-cache entries derived against any other base can never be
        looked up again (keys carry the base commit), so they are evicted
        here rather than left to age out of the LRU.
        """
        self.base_commit_id = self._repo.head()
        if self._prefix_cache:
            stale = [
                key for key in self._prefix_cache if key[0] != self.base_commit_id
            ]
            for key in stale:
                del self._prefix_cache[key]

    def on_commit(
        self, change: Change, changes_by_id: Mapping[ChangeId, Change]
    ) -> None:
        """Land a decided change on the mainline and re-pin the base.

        Called by the planner exactly when the change's decisive build
        succeeded, so the mainline stays green by construction.  The
        memoized base context advances with the commit: the new head's
        context is the committed change's patch folded onto the old one
        (or, better, the decisive build's already-cached prefix state),
        never a from-scratch reload.
        """
        if change.patch is None:
            raise ValueError(f"change {change.change_id} carries no patch")
        old_head = self.base_commit_id
        old_ctx = self._base_contexts.get(old_head)
        advanced = self._prefix_cache.get(
            (old_head, frozenset((change.change_id,)))
        )
        self._repo.commit_to_mainline(
            change.patch,
            message=change.description or change.change_id,
            author=change.developer_id,
            green=True,
        )
        self.refresh_base()
        if self.incremental:
            if advanced is None and old_ctx is not None:
                # commit_to_mainline just applied this patch to the same
                # snapshot, so the derivation cannot conflict.
                advanced = self._derive(old_ctx, change.patch)
            if advanced is not None:
                self.stats.base_context_advances += 1
                self._remember_base(
                    self.base_commit_id,
                    advanced.as_root(self.BASE_FLATTEN_DEPTH),
                )
        if self.recorder.enabled:
            self.recorder.counter(
                "service_mainline_commits_total",
                "Changes landed on the mainline.",
            ).inc()
            self.recorder.event(
                "commit",
                category="service",
                track="service",
                change_id=change.change_id,
                commit_id=self.base_commit_id,
            )

    # -- incremental machinery ---------------------------------------------

    def _remember_base(self, commit_id: CommitId, context: BuildContext) -> None:
        self._base_contexts[commit_id] = context
        self._base_contexts.move_to_end(commit_id)
        while len(self._base_contexts) > self.BASE_CONTEXT_CAPACITY:
            self._base_contexts.popitem(last=False)

    def _base_context(self) -> BuildContext:
        """The memoized context for the current base commit (load once)."""
        context = self._base_contexts.get(self.base_commit_id)
        if context is None:
            context = BuildContext.load(
                self._repo.snapshot(self.base_commit_id).to_dict()
            )
            self.stats.base_context_loads += 1
            self._remember_base(self.base_commit_id, context)
        else:
            self._base_contexts.move_to_end(self.base_commit_id)
            self.stats.base_context_reuses += 1
            if self._metrics is not None:
                self._metrics.base_context_reused.inc()
        return context

    def _derive(self, context: BuildContext, patch: Patch) -> BuildContext:
        """Fold one patch onto a context; raises PatchConflictError."""
        derived = context.derive(patch.apply(context.snapshot), patch.paths)
        self.stats.targets_rehashed += derived.rehashed
        return derived

    def _prefix_put(
        self, key: Tuple[CommitId, FrozenSet[ChangeId]], context: BuildContext
    ) -> None:
        self._prefix_cache[key] = context
        self._prefix_cache.move_to_end(key)
        while len(self._prefix_cache) > self.prefix_capacity:
            self._prefix_cache.popitem(last=False)

    def _prefix_lookup(
        self, key: Tuple[CommitId, FrozenSet[ChangeId]]
    ) -> Optional[BuildContext]:
        context = self._prefix_cache.get(key)
        if context is None:
            return None
        self._prefix_cache.move_to_end(key)
        self.stats.prefix_hits += 1
        if self._metrics is not None:
            self._metrics.prefix_hits.inc()
        return context

    def _prefix_context(
        self, base_context: BuildContext, assumed: Sequence[Change]
    ) -> BuildContext:
        """The context for the assumed stack, reusing the deepest cached prefix.

        Patches fold in sorted-change-id order (matching the from-scratch
        merge order), and every intermediate prefix is cached so sibling
        and child speculations start from it.
        """
        if not assumed:
            return base_context
        base = self.base_commit_id
        ids = [other.change_id for other in assumed]
        context = base_context
        start = 0
        for length in range(len(ids), 0, -1):
            cached = self._prefix_lookup((base, frozenset(ids[:length])))
            if cached is not None:
                context, start = cached, length
                break
        for position in range(start, len(assumed)):
            context = self._derive(context, assumed[position].patch)
            self.stats.prefix_misses += 1
            if self._metrics is not None:
                self._metrics.prefix_misses.inc()
            self._prefix_put((base, frozenset(ids[: position + 1])), context)
        return context

    # -- parallel backend seam ----------------------------------------------

    def attach_backend(
        self,
        backend,
        idle_hook=None,
        step_wall_seconds: float = 0.0,
    ) -> None:
        """Fan future batches out through ``backend`` (a
        :class:`repro.parallel.backend.BuildBackend`).

        ``idle_hook`` runs while the backend waits on in-flight builds and
        must be outcome-neutral.  ``step_wall_seconds`` is the synthetic
        wall cost per hermetic step forwarded to workers.
        """
        self._backend = backend
        self.idle_hook = idle_hook
        self.step_wall_seconds = step_wall_seconds

    def detach_backend(self):
        """Back to inline execution; returns the detached backend."""
        if self._pending_dispatches:
            raise ParallelExecutionError(
                "cannot detach a backend with unresolved dispatched batches"
            )
        backend, self._backend = self._backend, None
        self.idle_hook = None
        return backend

    @property
    def backend(self):
        return self._backend

    def _request_snapshot(self) -> Dict:
        """The base head's snapshot as a plain (picklable) dict, memoized
        per head — requests for one epoch all share the same object, and
        fork-started workers share it copy-on-write."""
        memo = self._base_snapshot_memo
        if memo is not None and memo[0] == self.base_commit_id:
            return memo[1]
        context = self._base_context()
        snapshot = context.snapshot
        materialized = (
            snapshot.to_dict() if hasattr(snapshot, "to_dict") else dict(snapshot)
        )
        self._base_snapshot_memo = (self.base_commit_id, materialized)
        return materialized

    def _build_request(
        self,
        build_id: int,
        key: BuildKey,
        changes_by_id: Mapping[ChangeId, Change],
        trace_id: str = "",
        parent_span_id: int = 0,
        batch_members: Sequence[ChangeId] = (),
    ):
        from repro.parallel.payload import BuildRequest

        change = changes_by_id[key.change_id]
        assumed = [changes_by_id[cid] for cid in sorted(key.assumed)]
        for other in assumed + [change]:
            if other.patch is None:
                raise ValueError(f"change {other.change_id} carries no patch")
        return BuildRequest(
            build_id=build_id,
            change_id=key.change_id,
            base_commit_id=self.base_commit_id,
            base_snapshot=self._request_snapshot(),
            assumed=tuple((other.change_id, other.patch) for other in assumed),
            patch=change.patch,
            step_wall_seconds=self.step_wall_seconds,
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            batch_members=tuple(batch_members),
        )

    def _merge_response(
        self,
        key: BuildKey,
        response,
        span_id: int = 0,
        at: Optional[float] = None,
    ) -> BuildExecution:
        """Fold one worker response back into the parent — the quiescent
        point where determinism is re-established.

        Workers return *raw* step outcomes; replaying them here, in
        selection order, through the parent's own artifact cache decides
        canonically which steps count as executed vs. eliminated.  Step
        outcomes are pure functions of the merged snapshot, so the
        reconstructed report (and thus duration, counters, and every
        downstream decision) is bit-identical to what the serial oracle
        computes.

        ``span_id``/``at`` carry the dispatching build span and its sim
        dispatch time; when set (tracing on), the worker's wall-clock
        step spans are spliced under that span with dual timestamps.
        """
        if response is None or response.error is not None:
            reason = "no response" if response is None else response.error
            raise ParallelExecutionError(
                f"worker failed for {key.label()}: {reason}"
            )
        if response.merge_conflict is not None:
            execution = BuildExecution(
                key=key,
                success=False,
                duration=self.step_minutes,
                failure_reason=f"merge conflict: {response.merge_conflict}",
            )
            self._splice_worker_spans(key, response, execution, span_id, at)
            return execution
        cache = self.executor.cache
        report = BuildReport()
        report.targets_built.extend(response.targets)
        for step in response.steps:
            result = cache.get(step.digest, step.kind)
            if result is None:
                result = StepResult(
                    StepSpec(step.target, step.kind), step.passed, step.log
                )
                cache.put(step.digest, step.kind, result)
            report.append(result)
        self.executor.record_report(report)
        execution = self._execution_from_report(key, report)
        self._splice_worker_spans(key, response, execution, span_id, at)
        return execution

    def _splice_worker_spans(
        self,
        key: BuildKey,
        response,
        execution: BuildExecution,
        span_id: int,
        at: Optional[float],
    ) -> None:
        """Graft the worker's wall-clock spans into the parent tracer.

        Sim placement is proportional: the build occupies
        ``[at, at + duration]`` in simulated minutes and the worker's
        request occupied ``response.wall_seconds`` of real time, so each
        worker span maps onto the build span by its wall-clock fraction —
        containment under the dispatching span is preserved by
        construction.  The raw wall-clock edges ride along (epoch
        seconds, ``wall_track`` = the worker process) so the Chrome view
        shows real per-worker-slot occupancy next to simulated time.
        """
        if (
            not self.recorder.enabled
            or span_id <= 0
            or at is None
            or not response.step_spans
        ):
            return
        total_wall = response.wall_seconds
        scale = execution.duration / total_wall if total_wall > 0.0 else 0.0
        wall_track = f"worker:pid{response.worker_pid}"
        for span in response.step_spans:
            sim_start = at + scale * span.wall_offset
            sim_end = at + scale * (span.wall_offset + span.wall_duration)
            wall_start = response.wall_started + span.wall_offset
            self.recorder.splice_span(
                span.name,
                start=sim_start,
                end=max(sim_end, sim_start),
                parent_id=span_id,
                category="worker",
                track=f"change:{key.change_id}",
                wall_start=wall_start,
                wall_end=wall_start + span.wall_duration,
                wall_track=wall_track,
                kind=span.kind,
                target=span.target,
                step=span.step,
                worker_pid=response.worker_pid,
            )

    def dispatch_batch(
        self,
        keys: Sequence[BuildKey],
        changes_by_id: Mapping[ChangeId, Change],
        span_ids: Optional[Sequence[int]] = None,
        now: Optional[float] = None,
        batch_members: Optional[Sequence[Sequence[ChangeId]]] = None,
    ) -> None:
        """Start one epoch's builds on the backend without waiting.

        The overlapped half of the seam: requests are serialized against
        the *current* base head (no mainline commit can land between a
        dispatch and its resolution — resolutions happen before the event
        loop pops anything) and shipped to the backend.  The matching
        :meth:`resolve_dispatches` call merges the responses later, in
        dispatch order, at the pump loop's next quiescent point.

        ``span_ids`` (aligned with ``keys``; 0 = untraced) and ``now``
        (sim dispatch time) thread the parent's trace context into each
        request: workers see a non-empty ``trace_id``, capture per-step
        wall spans, and resolution splices them under the build span.
        """
        if self._backend is None or not self.incremental:
            raise ParallelExecutionError(
                "dispatch_batch needs an attached backend and incremental mode"
            )
        ids = list(span_ids) if span_ids is not None else [0] * len(keys)
        if len(ids) != len(keys):
            raise ValueError("span_ids must align with keys")
        members = (
            list(batch_members)
            if batch_members is not None
            else [()] * len(keys)
        )
        if len(members) != len(keys):
            raise ValueError("batch_members must align with keys")
        tracing = self.recorder.enabled and now is not None
        requests = [
            self._build_request(
                position,
                key,
                changes_by_id,
                trace_id=f"dispatch:{span_id}" if tracing and span_id > 0 else "",
                parent_span_id=span_id if tracing else 0,
                batch_members=group,
            )
            for position, (key, span_id, group) in enumerate(
                zip(keys, ids, members)
            )
        ]
        token = self._backend.submit_batch(requests)
        self._pending_dispatches.append((token, list(keys), ids, now))

    def has_pending_dispatches(self) -> bool:
        return bool(self._pending_dispatches)

    def resolve_dispatches(
        self,
    ) -> List[List[Tuple[BuildKey, BuildExecution]]]:
        """Wait for every dispatched batch and merge it, in dispatch order.

        Merging in dispatch order (and, within a batch, selection order)
        makes the parent's artifact/prefix caches evolve exactly as the
        inline serial path would have — the property the bit-identity
        oracle tests pin.
        """
        pending, self._pending_dispatches = self._pending_dispatches, []
        resolved: List[List[Tuple[BuildKey, BuildExecution]]] = []
        for token, keys, span_ids, at in pending:
            responses = self._backend.collect(token, idle_hook=self.idle_hook)
            if len(responses) != len(keys):
                raise ParallelExecutionError(
                    f"backend returned {len(responses)} responses "
                    f"for {len(keys)} requests"
                )
            resolved.append(
                [
                    (key, self._merge_response(key, response, span_id, at))
                    for key, response, span_id in zip(keys, responses, span_ids)
                ]
            )
        return resolved

    # -- execution ----------------------------------------------------------

    def execute_batch(
        self,
        keys: Sequence[BuildKey],
        changes_by_id: Mapping[ChangeId, Change],
        batch_members: Optional[Sequence[Sequence[ChangeId]]] = None,
    ) -> List[BuildExecution]:
        """One epoch's builds — fanned out when a backend is attached.

        Requests are dispatched together; responses come back in request
        order (the backend contract) and merge sequentially, so the
        parent's cache and prefix state evolve exactly as if the batch
        had run inline.  Without a backend (or in from-scratch reference
        mode) this is the plain serial loop.  ``batch_members`` threads
        speculative-batch membership into each request as metadata.
        """
        if self._backend is None or not self.incremental:
            return [self.execute(key, changes_by_id) for key in keys]
        members = (
            list(batch_members)
            if batch_members is not None
            else [()] * len(keys)
        )
        if len(members) != len(keys):
            raise ValueError("batch_members must align with keys")
        requests = [
            self._build_request(
                position, key, changes_by_id, batch_members=group
            )
            for position, (key, group) in enumerate(zip(keys, members))
        ]
        responses = self._backend.run_batch(requests, idle_hook=self.idle_hook)
        if len(responses) != len(requests):
            raise ParallelExecutionError(
                f"backend returned {len(responses)} responses "
                f"for {len(requests)} requests"
            )
        return [
            self._merge_response(key, response)
            for key, response in zip(keys, responses)
        ]

    def execute(
        self, key: BuildKey, changes_by_id: Mapping[ChangeId, Change]
    ) -> BuildExecution:
        change = changes_by_id[key.change_id]
        assumed = [changes_by_id[cid] for cid in sorted(key.assumed)]
        for other in assumed + [change]:
            if other.patch is None:
                raise ValueError(f"change {other.change_id} carries no patch")
        if not self.incremental:
            return self._execute_scratch(key, change, assumed)

        base_context = self._base_context()
        # Merge in submission order; a textual conflict fails the build the
        # same way a failed merge fails it in production.
        try:
            prefix = self._prefix_context(base_context, assumed)
            stack_key = (self.base_commit_id, key.assumed | {key.change_id})
            merged = self._prefix_lookup(stack_key)
            if merged is None:
                merged = self._derive(prefix, change.patch)
                self.stats.prefix_misses += 1
                if self._metrics is not None:
                    self._metrics.prefix_misses.inc()
                # The merged state doubles as the prefix for any child
                # speculation that assumes this change on top of the stack.
                self._prefix_put(stack_key, merged)
        except PatchConflictError as exc:
            return BuildExecution(
                key=key,
                success=False,
                duration=self.step_minutes,
                failure_reason=f"merge conflict: {exc}",
            )
        report = self.executor.build_between(
            base_context, merged, stop_on_failure=True
        )
        return self._execution_from_report(key, report)

    def _execute_scratch(
        self, key: BuildKey, change: Change, assumed: Sequence[Change]
    ) -> BuildExecution:
        """The from-scratch reference path (``incremental=False``)."""
        base_snapshot = self._repo.snapshot(self.base_commit_id).to_dict()
        merged = dict(base_snapshot)
        try:
            for other in list(assumed) + [change]:
                merged = other.patch.apply(merged)
        except PatchConflictError as exc:
            return BuildExecution(
                key=key,
                success=False,
                duration=self.step_minutes,
                failure_reason=f"merge conflict: {exc}",
            )
        report = self.executor.build_affected(
            base_snapshot, merged, stop_on_failure=True
        )
        return self._execution_from_report(key, report)

    def _execution_from_report(self, key: BuildKey, report) -> BuildExecution:
        duration = (
            report.steps_executed * self.step_minutes
            + report.steps_cached * self.cached_step_minutes
        )
        failure = report.first_failure()
        return BuildExecution(
            key=key,
            success=report.success,
            duration=max(duration, self.cached_step_minutes),
            steps_executed=report.steps_executed,
            steps_cached=report.steps_cached,
            failure_reason="" if failure is None else failure.log,
            targets_built=tuple(report.targets_built),
        )
