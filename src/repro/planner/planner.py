"""The planner engine (paper sections 3.2 and 6).

Event-driven core shared by every strategy:

* :meth:`PlannerEngine.submit` — enqueue a change, extend the conflict
  graph, freeze the change's conflicting-ancestor list;
* :meth:`PlannerEngine.plan` — ask the strategy for the current most
  valuable builds, abort running builds that fell out of the selection,
  start newly selected ones on free workers;
* :meth:`PlannerEngine.complete` — record a finished build, then commit or
  reject every change whose fate is now decided (a change's *decisive*
  build is the one whose assumed set equals the ancestors that actually
  committed), cascading until a fixpoint.

The simulator owns time; the planner is a pure state machine over
``now`` values it is handed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.changes.change import Change
from repro.changes.queue import PendingQueue
from repro.changes.state import ChangeLedger, ChangeRecord
from repro.conflict.conflict_graph import ConflictGraph
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.planner.controller import BuildController, BuildExecution
from repro.planner.workers import WorkerPool
from repro.types import BuildKey, ChangeId, ChangeState


@dataclass(frozen=True)
class ScheduledBuild:
    """A build the planner just started; the simulator times it.

    ``duration`` is ``None`` while the build is *dispatched but not yet
    resolved* — the overlapped path hands the work to a build backend at
    plan time and learns the duration at the next quiescent point
    (:meth:`PlannerEngine.resolve_pending`); the simulator must not
    schedule a completion event until then.
    """

    key: BuildKey
    duration: Optional[float]


@dataclass(frozen=True)
class Decision:
    """A terminal verdict on one change."""

    change_id: ChangeId
    committed: bool
    at: float
    reason: str = ""


@dataclass
class BuildRecord:
    """Planner-side bookkeeping for one build key.

    ``execution`` is ``None`` between an overlapped dispatch and its
    resolution; completions can only fire after resolution (the event is
    scheduled then), so every consumer of the outcome sees it filled.
    """

    key: BuildKey
    execution: Optional[BuildExecution]
    started_at: float
    completed_at: Optional[float] = None
    aborted: bool = False
    #: Open tracer span for the running build (None when not recording).
    span: Optional[object] = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None


@dataclass
class PlannerStats:
    """Aggregate counters for ablation benches."""

    builds_started: int = 0
    builds_completed: int = 0
    builds_aborted: int = 0
    build_minutes: float = 0.0
    wasted_minutes: float = 0.0
    plan_calls: int = 0
    #: Epochs answered by the input fingerprint without consulting the
    #: strategy (see :meth:`PlannerEngine.plan`).
    plan_calls_skipped: int = 0
    #: Build steps actually executed / eliminated across started builds.
    steps_executed: int = 0
    steps_cached: int = 0


class _PlannerMetrics:
    """Hoisted recorder handles for the planner's per-event instrumentation.

    ``recorder.counter(...)`` does a family lookup (dict get + label-key
    sort) on every call; the planner emits several per build and per
    decision, so resolve each series once and reuse the handle.
    """

    __slots__ = (
        "plan_calls",
        "replans_skipped",
        "queue_depth",
        "workers_busy",
        "worker_utilization",
        "builds_started",
        "steps_executed",
        "steps_cached",
        "builds_aborted",
        "wasted_minutes",
        "builds_completed",
        "build_minutes",
        "build_duration",
        "decisions_committed",
        "decisions_rejected",
        "turnaround",
        "assignment_estimate",
        "assignments_warm",
        "assignments_cold",
        "load_imbalance",
    )

    def __init__(self, recorder: Recorder) -> None:
        self.plan_calls = recorder.counter(
            "planner_plan_calls_total", "Planner epochs (plan() calls)."
        )
        self.replans_skipped = recorder.counter(
            "planner_replans_skipped_total",
            "Epochs answered by the input fingerprint without replanning.",
        )
        self.queue_depth = recorder.gauge(
            "planner_queue_depth", "Pending changes at epoch start."
        )
        self.workers_busy = recorder.gauge(
            "planner_workers_busy", "Busy workers after the epoch's starts."
        )
        self.worker_utilization = recorder.gauge(
            "planner_worker_utilization",
            "Busy fraction of the worker fleet after the epoch.",
        )
        self.builds_started = recorder.counter(
            "planner_builds_started_total", "Speculative builds started."
        )
        self.steps_executed = recorder.counter(
            "build_steps_executed_total",
            "Build steps actually executed (cache misses).",
        )
        self.steps_cached = recorder.counter(
            "build_steps_cached_total",
            "Build steps eliminated via the artifact cache.",
        )
        self.builds_aborted = recorder.counter(
            "planner_builds_aborted_total",
            "Speculative builds aborted after deselection.",
        )
        self.wasted_minutes = recorder.counter(
            "planner_wasted_minutes_total",
            "Build minutes thrown away by aborts.",
        )
        self.builds_completed = recorder.counter(
            "planner_builds_completed_total", "Speculative builds finished."
        )
        self.build_minutes = recorder.counter(
            "planner_build_minutes_total", "Total build minutes spent."
        )
        self.build_duration = recorder.histogram(
            "planner_build_duration_minutes",
            "Durations of completed builds.",
        )
        self.decisions_committed = recorder.counter(
            "planner_decisions_total",
            "Terminal verdicts on changes.",
            labels={"verdict": "committed"},
        )
        self.decisions_rejected = recorder.counter(
            "planner_decisions_total",
            "Terminal verdicts on changes.",
            labels={"verdict": "rejected"},
        )
        self.turnaround = recorder.histogram(
            "service_turnaround_minutes",
            "Submission-to-decision turnaround.",
        )
        self.assignment_estimate = recorder.histogram(
            "planner_worker_assignment_estimate_minutes",
            "EWMA duration estimates at assignment time (history-based "
            "load balancing, section 6).",
        )
        self.assignments_warm = recorder.counter(
            "planner_worker_assignments_total",
            "Worker assignments by history availability.",
            labels={"history": "warm"},
        )
        self.assignments_cold = recorder.counter(
            "planner_worker_assignments_total",
            "Worker assignments by history availability.",
            labels={"history": "cold"},
        )
        self.load_imbalance = recorder.gauge(
            "planner_worker_load_imbalance_minutes",
            "Max-minus-min cumulative busy minutes across workers.",
        )


class PlannerView:
    """Read-only view strategies use to pick builds."""

    def __init__(self, planner: "PlannerEngine") -> None:
        self._planner = planner

    @property
    def pending(self) -> List[Change]:
        """Pending changes in submission order."""
        return self._planner.queue.in_order()

    @property
    def ancestors(self) -> Mapping[ChangeId, Sequence[ChangeId]]:
        """Each pending change's conflicting predecessors (submit order)."""
        return self._planner.ancestors

    @property
    def decided(self) -> Mapping[ChangeId, bool]:
        """Decided change ids -> committed?"""
        return self._planner.decided

    @property
    def records(self) -> Mapping[ChangeId, ChangeRecord]:
        return self._planner.records

    @property
    def changes_by_id(self) -> Mapping[ChangeId, Change]:
        return self._planner.all_changes

    def running_keys(self) -> Set[BuildKey]:
        return set(self._planner.workers.running_builds())

    def conflict_degree(self, change_id: ChangeId) -> int:
        """Number of pending changes this one conflicts with (any order)."""
        return len(self._planner.conflict_graph.neighbors(change_id))

    def completed_outcome(self, key: BuildKey) -> Optional[bool]:
        """Outcome of a finished build, or ``None``."""
        record = self._planner.builds.get(key)
        if record is None or not record.done or record.aborted:
            return None
        return record.execution.success


class PlannerEngine:
    """Shared orchestration: queue + conflict graph + workers + decisions."""

    def __init__(
        self,
        strategy,
        controller: BuildController,
        workers: WorkerPool,
        conflict_predicate: Callable[[Change, Change], bool],
        preemption_grace: float = 0.0,
        recorder: Recorder = NULL_RECORDER,
        queue: Optional[PendingQueue] = None,
    ) -> None:
        """``preemption_grace``: a running build within this many minutes
        of completion is never aborted even when deselected — the paper's
        section-10 build-preemption refinement ("if a build is near its
        completion, it might be beneficial to continue running its build
        steps, instead of preemptively aborting").  0 disables it.

        ``recorder``: an optional :class:`~repro.obs.recorder.Recorder`;
        the default no-op recorder keeps every instrumentation site to a
        falsy branch.  Strategies exposing ``bind_recorder`` (e.g. the
        speculation-driven SubmitQueue strategy) receive the same one.

        ``queue``: the pending queue to plan over (default: a fresh
        monolithic :class:`PendingQueue`).  A queue exposing
        ``conflict_candidates(change)`` — the partition-aware queue —
        additionally narrows each submission's conflict sweep to the ids
        it returns."""
        if preemption_grace < 0:
            raise ValueError("preemption_grace must be non-negative")
        self.preemption_grace = preemption_grace
        self.strategy = strategy
        self.controller = controller
        self.workers = workers
        self.recorder = recorder
        bind = getattr(strategy, "bind_recorder", None)
        if bind is not None:
            bind(recorder)
        self._epoch_span = None
        self.queue = queue if queue is not None else PendingQueue()
        self.ledger = ChangeLedger()
        self.conflict_graph = ConflictGraph(conflict_predicate)
        #: Frozen at submit time: conflicting changes pending at arrival.
        self.ancestors: Dict[ChangeId, List[ChangeId]] = {}
        self.decided: Dict[ChangeId, bool] = {}
        self.records: Dict[ChangeId, ChangeRecord] = {}
        self.all_changes: Dict[ChangeId, Change] = {}
        self.builds: Dict[BuildKey, BuildRecord] = {}
        self._builds_by_change: Dict[ChangeId, List[BuildKey]] = {}
        self.stats = PlannerStats()
        self._view = PlannerView(self)
        self._decision_log: List[Decision] = []
        self._metrics = _PlannerMetrics(recorder) if recorder.enabled else None
        #: Bumped by every applied reorder; pending-id changes cover the
        #: other ancestry mutations (submission, decisions).
        self._ancestry_version = 0
        #: Epoch input fingerprint snapshotted at the *end* of the last
        #: full plan() — every later state mutation (submit, complete,
        #: reorder) perturbs at least one component relative to it.
        self._last_plan_fingerprint: Optional[tuple] = None
        #: Overlapped-dispatch bookkeeping: one entry per batch handed to
        #: the controller's backend and not yet resolved, in dispatch
        #: order — ``{"keys": [...], "at": dispatch clock}``.
        self._pending_resolution: List[Dict[str, object]] = []

    # -- submission ---------------------------------------------------------

    def submit(self, change: Change, now: float) -> ChangeRecord:
        """Register a freshly submitted change as pending."""
        record = self.ledger.register(change, now)
        self.records[change.change_id] = record
        self.all_changes[change.change_id] = change
        self.queue.enqueue(change)
        # A partition-aware queue narrows the sweep to the change's own
        # shard plus straddlers; the monolithic queue tests everything.
        provider = getattr(self.queue, "conflict_candidates", None)
        candidates = provider(change) if provider is not None else None
        conflicting = self.conflict_graph.add(change, candidates)
        # Ancestors are the conflicting changes that were already pending;
        # submission order makes them exactly the graph's older neighbors.
        self.ancestors[change.change_id] = self.conflict_graph.ancestors(
            change.change_id
        )
        del conflicting  # symmetric info, only ancestors drive speculation
        hook = getattr(self.strategy, "on_submit", None)
        if hook is not None:
            hook(change, self._view)
        return record

    # -- reordering (section 10 future work) ---------------------------------

    def reorder(self, ahead_id: ChangeId, behind_id: ChangeId) -> bool:
        """Let ``behind_id`` jump ``ahead_id`` in the conflict order.

        Both must be pending and ``ahead_id`` must currently be a
        conflicting ancestor of ``behind_id``.  After the swap the jumped
        change speculates on the jumper instead ("reorder non-independent
        changes in order to improve throughput", section 10).  Swaps that
        would create an ancestor cycle (deadlock) are refused; returns
        whether the swap was applied.
        """
        if ahead_id not in self.queue or behind_id not in self.queue:
            return False
        behind_ancestors = self.ancestors[behind_id]
        if ahead_id not in behind_ancestors:
            return False
        behind_ancestors.remove(ahead_id)
        self.ancestors[ahead_id].append(behind_id)
        if self._ancestors_have_cycle():
            # Roll back: the swap would deadlock decisions.
            self.ancestors[ahead_id].remove(behind_id)
            behind_ancestors.append(ahead_id)
            return False
        self._ancestry_version += 1
        return True

    def _ancestors_have_cycle(self) -> bool:
        """Detect a cycle among *pending* changes' ancestor edges.

        Iterative DFS with an explicit stack: pending chains routinely
        exceed Python's recursion limit (a 1000-deep queue is an ordinary
        deep-queue benchmark, not a pathology).
        """
        pending_ids = {change.change_id for change in self.queue}
        state: Dict[ChangeId, int] = {}  # 0=visiting, 1=done
        for root in pending_ids:
            if root in state:
                continue
            # Stack of (node, iterator over its remaining ancestors).
            stack = [(root, iter(self.ancestors.get(root, ())))]
            state[root] = 0
            while stack:
                node, ancestors_iter = stack[-1]
                advanced = False
                for ancestor in ancestors_iter:
                    if ancestor not in pending_ids:
                        continue
                    mark = state.get(ancestor)
                    if mark == 0:
                        return True  # back edge
                    if mark == 1:
                        continue
                    state[ancestor] = 0
                    stack.append(
                        (ancestor, iter(self.ancestors.get(ancestor, ())))
                    )
                    advanced = True
                    break
                if not advanced:
                    state[node] = 1
                    stack.pop()
        return False

    # -- planning -----------------------------------------------------------

    def _plan_fingerprint(self) -> tuple:
        """Everything the next epoch's outcome depends on.

        Pending ids capture arrivals, decisions, and queue order;
        ``len(self.decided)`` captures new verdicts (decisions are
        append-only and immutable); the running set captures starts,
        aborts, and completions — and with it every ``ChangeRecord``
        counter mutation, since those only move alongside a running-set
        change.  The ancestry version covers reorders.
        """
        return (
            tuple(change.change_id for change in self.queue),
            len(self.decided),
            frozenset(self.workers.running_builds()),
            self.workers.capacity,
            self._ancestry_version,
        )

    def invalidate_plan_cache(self) -> None:
        """Force the next :meth:`plan` to replan from scratch.

        Drops the epoch fingerprint and any incremental carry-over the
        strategy holds (benchmarks use this to measure the cold path)."""
        self._last_plan_fingerprint = None
        invalidate = getattr(self.strategy, "invalidate_carry_over", None)
        if invalidate is not None:
            invalidate()

    def plan(self, now: float) -> "PlanResult":
        """One epoch: select builds, abort stale ones, start new ones.

        Epochs whose inputs are unchanged since the previous ``plan()``
        (no arrival, completion, decision, or reorder) are *skipped*:
        re-running a deterministic strategy over identical state starts
        and aborts nothing, so the planner returns an empty
        :class:`PlanResult` without consulting the strategy at all.
        Strategies whose selection is not a pure function of the view
        (call-count-dependent test doubles) opt out by setting
        ``deterministic_select = False``.
        """
        self.stats.plan_calls += 1
        if self.recorder.enabled:
            self._begin_epoch(now)
        propose = getattr(self.strategy, "propose_reorders", None)
        if propose is not None:
            # Runs before the fingerprint check: proposals may mutate
            # strategy state each epoch, and applied reorders bump the
            # ancestry version (invalidating the fingerprint) themselves.
            for ahead_id, behind_id in propose(self._view):
                self.reorder(ahead_id, behind_id)
        fingerprint = self._plan_fingerprint()
        if (
            fingerprint == self._last_plan_fingerprint
            and getattr(self.strategy, "deterministic_select", True)
        ):
            self.stats.plan_calls_skipped += 1
            if self._metrics is not None:
                self._metrics.replans_skipped.inc()
                self._record_epoch(0, 0)
            return PlanResult(started=[], aborted=[])
        budget = self.workers.capacity
        selected: List[BuildKey] = self.strategy.select(self._view, budget)
        selected_set = set(selected)

        aborted: List[BuildKey] = []
        for key in self.workers.running_builds():
            if key in selected_set:
                continue
            if self.preemption_grace > 0.0:
                record = self.builds.get(key)
                # Unresolved dispatches have no duration yet; they were
                # dispatched at the current instant, so "nearly done"
                # can never apply — fall through to the abort.
                if record is not None and record.execution is not None:
                    remaining = (
                        record.started_at + record.execution.duration - now
                    )
                    if 0.0 <= remaining <= self.preemption_grace:
                        continue  # nearly done: let it finish
            self._abort(key, now)
            aborted.append(key)

        to_start: List[BuildKey] = []
        free_budget = self.workers.free
        for key in selected:
            if len(to_start) >= free_budget:
                break
            if self.workers.is_running(key):
                continue
            existing = self.builds.get(key)
            if existing is not None and existing.done and not existing.aborted:
                continue  # result already known; never rebuild
            to_start.append(key)
        started = self._start_batch(to_start, now)

        # Stall guard: if the strategy selected nothing runnable while work
        # is pending, force the oldest pending change's decisive build (its
        # ancestors are all decided by definition of "oldest pending"), so
        # the system always makes progress.
        if not started and self.workers.busy == 0 and len(self.queue) > 0:
            head = self.queue.head()
            assert head is not None
            key = self._decisive_key(head.change_id)
            if key is not None:
                existing = self.builds.get(key)
                if existing is None or existing.aborted or not existing.done:
                    if not self.workers.is_running(key):
                        started.append(self._start(key, now))
        # Snapshot at exit: the starts/aborts above already mutated the
        # running set, so this fingerprint describes the state the *next*
        # plan() will see if nothing happens in between.
        self._last_plan_fingerprint = self._plan_fingerprint()
        if self.recorder.enabled:
            self._record_epoch(len(started), len(aborted))
        return PlanResult(started=started, aborted=aborted)

    def _begin_epoch(self, now: float) -> None:
        """Close the previous epoch span and open the next one."""
        if self._epoch_span is not None:
            self.recorder.finish_span(self._epoch_span, at=now)
        self._epoch_span = self.recorder.start_span(
            "epoch",
            category="planner",
            track="service",
            at=now,
            epoch=self.stats.plan_calls,
            queue_depth=len(self.queue),
            workers_busy=self.workers.busy,
        )
        self._metrics.plan_calls.inc()
        self._metrics.queue_depth.set(len(self.queue))

    def _record_epoch(self, started: int, aborted: int) -> None:
        """Attach this epoch's selection outcome to its span and gauges."""
        if self._epoch_span is not None:
            self._epoch_span.attrs["builds_started"] = started
            self._epoch_span.attrs["builds_aborted"] = aborted
        self._metrics.workers_busy.set(self.workers.busy)
        self._metrics.worker_utilization.set(
            self.workers.busy / self.workers.capacity
        )
        self._metrics.load_imbalance.set(self.workers.load_imbalance())

    def finish_trace(self, now: float) -> None:
        """Close the open epoch span (call when a run drains)."""
        if self._epoch_span is not None:
            self.recorder.finish_span(self._epoch_span, at=now)
            self._epoch_span = None

    def _start(self, key: BuildKey, now: float) -> ScheduledBuild:
        return self._start_batch([key], now)[0]

    def _start_batch(
        self, keys: List[BuildKey], now: float
    ) -> List[ScheduledBuild]:
        """Execute and assign a batch of selected builds.

        Worker slots are claimed in longest-processing-time-first order
        over the pool's EWMA duration history (section 6's history-based
        balancing); everything else — execution, bookkeeping, spans, the
        returned schedule — stays in selection order, so event timing and
        build outcomes are unchanged by the assignment policy.
        """
        if not keys:
            return []
        # Batch-protocol strategies annotate selected keys with the batch
        # membership riding on them; the controller threads it into each
        # BuildRequest as outcome-neutral metadata.  The kwarg is passed
        # only when some key carries members, so plain strategies and
        # two-argument stub controllers are untouched.
        members_of = getattr(self.strategy, "scheduled_batch_members", None)
        batch_members: Optional[List[tuple]] = None
        if members_of is not None:
            groups = [tuple(members_of(key)) for key in keys]
            if any(groups):
                batch_members = groups
        # Overlapped path: a controller with a backend attached takes the
        # batch asynchronously — executions (and durations) arrive at the
        # next quiescent point via resolve_pending().  Everything the
        # *selection* depends on (worker occupancy, running set, stats
        # the strategies read) is updated now, identically to the inline
        # path, so decisions cannot diverge.
        if (
            getattr(self.controller, "backend", None) is not None
            and getattr(self.controller, "incremental", False)
        ):
            # Records (and their tracer spans) are minted *before* the
            # dispatch so each request can carry its build span's id
            # across the process boundary; span allocation order matches
            # the old post-dispatch order (selection order), and
            # dispatch_batch reads only controller state, so outcomes
            # and trace shapes are unchanged.
            self._assign_workers(keys, now)
            scheduled = [self._register_dispatch(key, now) for key in keys]
            records = [self.builds[key] for key in keys]
            span_ids = [
                record.span.span_id if record.span is not None else 0
                for record in records
            ]
            dispatch_kwargs = (
                {"batch_members": batch_members}
                if batch_members is not None
                else {}
            )
            self.controller.dispatch_batch(
                keys,
                self.all_changes,
                span_ids=span_ids,
                now=now,
                **dispatch_kwargs,
            )
            self._pending_resolution.append(
                {
                    "keys": list(keys),
                    # The records minted above: resolution must only time
                    # a completion for a dispatch that is still current
                    # (not aborted, not superseded by a re-dispatch).
                    "records": records,
                    "at": now,
                }
            )
            return scheduled
        # Inline path: controllers that can fan a whole batch out expose
        # execute_batch; plain stubs may only have execute.  Either way
        # the executions come back in selection order.
        execute_batch = getattr(self.controller, "execute_batch", None)
        if execute_batch is not None:
            if batch_members is not None:
                executions = execute_batch(
                    keys, self.all_changes, batch_members=batch_members
                )
            else:
                executions = execute_batch(keys, self.all_changes)
        else:
            executions = [
                self.controller.execute(key, self.all_changes) for key in keys
            ]
        self._assign_workers(keys, now)
        return [
            self._register_start(key, execution, now)
            for key, execution in zip(keys, executions)
        ]

    def _assign_workers(self, keys: List[BuildKey], now: float) -> None:
        for key in self.workers.assignment_order(keys):
            estimate = self.workers.estimate(key.change_id)
            self.workers.assign(key, now)
            if self._metrics is not None:
                if estimate is None:
                    self._metrics.assignments_cold.inc()
                else:
                    self._metrics.assignments_warm.inc()
                    self._metrics.assignment_estimate.observe(estimate)

    def _register_start(
        self, key: BuildKey, execution: BuildExecution, now: float
    ) -> ScheduledBuild:
        if key not in self.builds:
            self._builds_by_change.setdefault(key.change_id, []).append(key)
        build = BuildRecord(key=key, execution=execution, started_at=now)
        self.builds[key] = build
        record = self.records.get(key.change_id)
        if record is not None:
            record.builds_scheduled += 1
        self.stats.builds_started += 1
        self.stats.steps_executed += execution.steps_executed
        self.stats.steps_cached += execution.steps_cached
        if self.recorder.enabled:
            build.span = self.recorder.start_span(
                "build",
                category="build",
                track=f"change:{key.change_id}",
                at=now,
                parent=self._epoch_span,
                key=key.label() if hasattr(key, "label") else str(key),
                change_id=key.change_id,
                assumed=len(key.assumed),
            )
            self._metrics.builds_started.inc()
            if execution.steps_executed or execution.steps_cached:
                self._metrics.steps_executed.inc(execution.steps_executed)
                self._metrics.steps_cached.inc(execution.steps_cached)
        return ScheduledBuild(key=key, duration=execution.duration)

    def _register_dispatch(self, key: BuildKey, now: float) -> ScheduledBuild:
        """Dispatch-time half of :meth:`_register_start` (overlapped path).

        Everything the next ``plan()`` can read is updated here — the
        build record, per-change counters, ``builds_started`` — while the
        execution-derived pieces (step counters, duration) wait for
        :meth:`resolve_pending`.
        """
        if key not in self.builds:
            self._builds_by_change.setdefault(key.change_id, []).append(key)
        build = BuildRecord(key=key, execution=None, started_at=now)
        self.builds[key] = build
        record = self.records.get(key.change_id)
        if record is not None:
            record.builds_scheduled += 1
        self.stats.builds_started += 1
        if self.recorder.enabled:
            build.span = self.recorder.start_span(
                "build",
                category="build",
                track=f"change:{key.change_id}",
                at=now,
                parent=self._epoch_span,
                key=key.label() if hasattr(key, "label") else str(key),
                change_id=key.change_id,
                assumed=len(key.assumed),
            )
            self._metrics.builds_started.inc()
        return ScheduledBuild(key=key, duration=None)

    def has_pending_builds(self) -> bool:
        """Are there dispatched batches awaiting resolution?"""
        return bool(self._pending_resolution)

    def resolve_pending(self) -> List["ResolvedBatch"]:
        """Merge every dispatched batch back in — the quiescent point.

        Called by the event loop before it pops anything, so the clock
        has not moved since the dispatches: completion events computed
        from ``batch.at + duration`` land exactly where the inline path
        would have put them, and the artifact-cache merges replay in
        dispatch order — decisions stay bit-identical to the serial
        oracle.
        """
        if not self._pending_resolution:
            return []
        infos, self._pending_resolution = self._pending_resolution, []
        merged = self.controller.resolve_dispatches()
        batches: List[ResolvedBatch] = []
        for info, results in zip(infos, merged):
            executions: List[BuildExecution] = []
            live: List[ScheduledBuild] = []
            for record, (key, execution) in zip(info["records"], results):
                record.execution = execution
                self.stats.steps_executed += execution.steps_executed
                self.stats.steps_cached += execution.steps_cached
                if self.recorder.enabled and (
                    execution.steps_executed or execution.steps_cached
                ):
                    self._metrics.steps_executed.inc(execution.steps_executed)
                    self._metrics.steps_cached.inc(execution.steps_cached)
                executions.append(execution)
                # Time a completion only for dispatches that are still
                # current: aborted or re-dispatched keys were merged for
                # their cache effects (the inline path executed them
                # too) but must not produce a (duplicate) event.
                if not record.aborted and self.builds.get(key) is record:
                    live.append(
                        ScheduledBuild(key=key, duration=execution.duration)
                    )
                elif self.recorder.enabled and record.span is not None:
                    # A superseded dispatch (re-dispatched key) never
                    # reaches complete(); close its span here, at the
                    # sim time its build would have finished, instead of
                    # letting finish_open sweep it at export time.
                    self.recorder.finish_span(
                        record.span,
                        at=info["at"] + execution.duration,
                        superseded=True,
                    )
                    record.span = None
            batches.append(
                ResolvedBatch(
                    at=info["at"],
                    keys=list(info["keys"]),
                    executions=executions,
                    live=live,
                )
            )
        return batches

    def _abort(self, key: BuildKey, now: float) -> None:
        # completed=False keeps the partial interval out of the worker
        # pool's duration history — aborts say nothing about build length.
        self.workers.release(key, now, completed=False)
        record = self.builds.get(key)
        if record is not None:
            record.aborted = True
            self.stats.wasted_minutes += max(0.0, now - record.started_at)
        change_record = self.records.get(key.change_id)
        if change_record is not None:
            change_record.builds_aborted += 1
        self.stats.builds_aborted += 1
        if self.recorder.enabled:
            if record is not None and record.span is not None:
                self.recorder.finish_span(record.span, at=now, aborted=True)
                record.span = None
            self._metrics.builds_aborted.inc()
            if record is not None:
                self._metrics.wasted_minutes.inc(
                    max(0.0, now - record.started_at)
                )

    # -- completion & decisions -----------------------------------------------

    def complete(self, key: BuildKey, now: float) -> List[Decision]:
        """Record a finished build and decide every change it settles."""
        record = self.builds.get(key)
        if record is None or record.aborted or record.done:
            return []  # stale completion (build was aborted meanwhile)
        self.workers.release(key, now)
        record.completed_at = now
        self.stats.builds_completed += 1
        self.stats.build_minutes += record.execution.duration
        if self.recorder.enabled:
            if record.span is not None:
                self.recorder.finish_span(
                    record.span, at=now, success=record.execution.success
                )
                record.span = None
            self._metrics.builds_completed.inc()
            self._metrics.build_minutes.inc(record.execution.duration)
            self._metrics.build_duration.observe(record.execution.duration)

        change_record = self.records.get(key.change_id)
        if change_record is not None and not change_record.state.is_terminal:
            if record.execution.success:
                change_record.speculations_succeeded += 1
            else:
                change_record.speculations_failed += 1

        interpret = getattr(self.strategy, "interpret", None)
        decisions: List[Decision] = []
        if interpret is not None:
            custom = interpret(key, record.execution.success, self._view, now)
            if custom is not None:
                for decision in custom:
                    self._apply_decision(decision)
                    decisions.append(decision)
        decisions.extend(self._decide_ready(now))
        return decisions

    def _decisive_key(self, change_id: ChangeId) -> Optional[BuildKey]:
        """The build that settles ``change_id``, once all ancestors decided."""
        committed: Set[ChangeId] = set()
        for ancestor_id in self.ancestors[change_id]:
            verdict = self.decided.get(ancestor_id)
            if verdict is None:
                return None  # an ancestor is still pending
            if verdict:
                committed.add(ancestor_id)
        return BuildKey(change_id, frozenset(committed))

    def _usable_build(self, change_id: ChangeId, decisive: BuildKey) -> Optional[BuildRecord]:
        """A finished build whose result decides ``change_id``.

        The decisive key itself always qualifies.  So does any finished
        build whose assumed set (a) covers exactly the committed conflicting
        ancestors and (b) otherwise stacks only *committed* changes:
        committed extras are individually healthy and, not being conflict
        ancestors, cannot interact with the subject — the stack is
        equivalent to HEAD plus the change.  Optimistic (Zuul-style) chains
        rely on this rule to convert their all-ahead builds into decisions.
        """
        exact = self.builds.get(decisive)
        if exact is not None and exact.done and not exact.aborted:
            return exact
        ancestor_set = set(self.ancestors[change_id])
        for key in self._builds_by_change.get(change_id, ()):
            build = self.builds.get(key)
            if build is None or not build.done or build.aborted:
                continue
            if key.assumed & frozenset(ancestor_set) != decisive.assumed:
                continue
            extras = key.assumed - frozenset(ancestor_set)
            if all(self.decided.get(extra, False) for extra in extras):
                return build
        return None

    def _decide_ready(self, now: float) -> List[Decision]:
        """Commit/reject every change whose decisive build has finished."""
        decisions: List[Decision] = []
        progressed = True
        while progressed:
            progressed = False
            for change in self.queue.in_order():
                key = self._decisive_key(change.change_id)
                if key is None:
                    continue
                build = self._usable_build(change.change_id, key)
                if build is None:
                    continue
                decision = Decision(
                    change_id=change.change_id,
                    committed=build.execution.success,
                    at=now,
                    reason=build.execution.failure_reason
                    if not build.execution.success
                    else "decisive build passed",
                )
                self._apply_decision(decision)
                decisions.append(decision)
                progressed = True
        return decisions

    def _apply_decision(self, decision: Decision) -> None:
        change_id = decision.change_id
        record = self.records[change_id]
        if record.state.is_terminal:
            return
        if decision.committed:
            record.mark_committed(decision.at, decision.reason or "committed")
        else:
            record.mark_rejected(decision.at, decision.reason or "rejected")
        self.decided[change_id] = decision.committed
        self.queue.remove(change_id)
        self.conflict_graph.remove(change_id)
        self._decision_log.append(decision)
        if self.recorder.enabled:
            verdict = "committed" if decision.committed else "rejected"
            if decision.committed:
                self._metrics.decisions_committed.inc()
            else:
                self._metrics.decisions_rejected.inc()
            if record.turnaround is not None:
                self._metrics.turnaround.observe(record.turnaround)
            if self._epoch_span is not None:
                self._epoch_span.attrs["decisions"] = (
                    int(self._epoch_span.attrs.get("decisions", 0)) + 1
                )
            self.recorder.event(
                "decision",
                category="planner",
                track="service",
                at=decision.at,
                change_id=change_id,
                verdict=verdict,
                turnaround=record.turnaround,
            )
        change = self.all_changes[change_id]
        commit_hook = getattr(self.controller, "on_commit", None)
        if decision.committed and commit_hook is not None:
            commit_hook(change, self.all_changes)
        observe = getattr(self.strategy, "on_decision", None)
        if observe is not None:
            observe(change, decision, self._view)

    # -- inspection ---------------------------------------------------------

    @property
    def view(self) -> PlannerView:
        return self._view

    def decisions(self) -> List[Decision]:
        return list(self._decision_log)

    def pending_count(self) -> int:
        return len(self.queue)


@dataclass(frozen=True)
class PlanResult:
    """What one :meth:`PlannerEngine.plan` call did."""

    started: List[ScheduledBuild]
    aborted: List[BuildKey]


@dataclass(frozen=True)
class ResolvedBatch:
    """One dispatched batch after resolution (overlapped path).

    ``keys``/``executions`` cover the whole batch in selection order
    (for journaling); ``live`` holds only the builds that still need a
    completion event timed at ``at + duration``.
    """

    at: float
    keys: List[BuildKey]
    executions: List[BuildExecution]
    live: List[ScheduledBuild]
