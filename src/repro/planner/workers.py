"""The worker pool.

Models the build fleet (Mac Minis in the paper's setup): a fixed number of
slots, each able to run one speculative build at a time.  Assignment is
load-balanced by cumulative busy time, the simulation-level analogue of
the paper's history-based load balancing (section 6), and utilization is
tracked for the throughput benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import NoWorkerAvailableError
from repro.types import BuildKey


@dataclass
class _Worker:
    """One worker slot with its accounting."""

    index: int
    busy_with: Optional[BuildKey] = None
    busy_since: float = 0.0
    total_busy: float = 0.0
    builds_run: int = 0


class WorkerPool:
    """Fixed-capacity pool with least-loaded assignment."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("worker capacity must be positive")
        self._workers: List[_Worker] = [_Worker(i) for i in range(capacity)]
        self._by_build: Dict[BuildKey, _Worker] = {}

    @property
    def capacity(self) -> int:
        return len(self._workers)

    @property
    def busy(self) -> int:
        return len(self._by_build)

    @property
    def free(self) -> int:
        return self.capacity - self.busy

    def is_running(self, key: BuildKey) -> bool:
        return key in self._by_build

    def running_builds(self) -> List[BuildKey]:
        return list(self._by_build)

    def assign(self, key: BuildKey, now: float) -> int:
        """Assign a build to the least-loaded free worker; returns its index."""
        if key in self._by_build:
            raise ValueError(f"build {key.label()} already running")
        candidates = [w for w in self._workers if w.busy_with is None]
        if not candidates:
            raise NoWorkerAvailableError(key.label())
        worker = min(candidates, key=lambda w: (w.total_busy, w.index))
        worker.busy_with = key
        worker.busy_since = now
        worker.builds_run += 1
        self._by_build[key] = worker
        return worker.index

    def release(self, key: BuildKey, now: float) -> int:
        """Release the worker running ``key``; returns its index."""
        worker = self._by_build.pop(key, None)
        if worker is None:
            raise KeyError(f"build {key.label()} not running")
        worker.total_busy += max(0.0, now - worker.busy_since)
        worker.busy_with = None
        return worker.index

    def utilization(self, now: float) -> float:
        """Fraction of wall-clock×capacity spent busy, up to ``now``."""
        if now <= 0.0:
            return 0.0
        total = 0.0
        for worker in self._workers:
            total += worker.total_busy
            if worker.busy_with is not None:
                total += max(0.0, now - worker.busy_since)
        return total / (now * self.capacity)

    def load_imbalance(self) -> float:
        """Max-minus-min cumulative busy time across workers."""
        totals = [w.total_busy for w in self._workers]
        return max(totals) - min(totals) if totals else 0.0
