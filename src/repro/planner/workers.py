"""The worker pool.

Models the build fleet (Mac Minis in the paper's setup): a fixed number of
slots, each able to run one speculative build at a time.  Assignment is
history-based, the paper's section-6 load balancing: completed builds feed
an EWMA of per-change durations, a batch of starts is ordered
longest-processing-time-first over those estimates (the classic greedy
makespan heuristic), and each build then goes to the worker with the least
cumulative busy time — which is also the cold-start fallback when no
history exists yet.  Utilization and imbalance are tracked for the
throughput benches.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import NoWorkerAvailableError
from repro.types import BuildKey, ChangeId


@dataclass
class _Worker:
    """One worker slot with its accounting."""

    index: int
    busy_with: Optional[BuildKey] = None
    busy_since: float = 0.0
    total_busy: float = 0.0
    builds_run: int = 0


class WorkerPool:
    """Fixed-capacity pool with history-based (EWMA + LPT) assignment.

    ``ewma_alpha`` weights the newest completed duration when updating a
    change's estimate; ``history_capacity`` bounds the per-change history
    map (LRU) so long simulations hold memory steady.
    """

    def __init__(
        self,
        capacity: int,
        ewma_alpha: float = 0.25,
        history_capacity: int = 4096,
    ) -> None:
        if capacity <= 0:
            raise ValueError("worker capacity must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if history_capacity <= 0:
            raise ValueError("history_capacity must be positive")
        self._workers: List[_Worker] = [_Worker(i) for i in range(capacity)]
        self._by_build: Dict[BuildKey, _Worker] = {}
        self._ewma_alpha = ewma_alpha
        self._history_capacity = history_capacity
        self._duration_ewma: "OrderedDict[ChangeId, float]" = OrderedDict()

    @property
    def capacity(self) -> int:
        return len(self._workers)

    @property
    def busy(self) -> int:
        return len(self._by_build)

    @property
    def free(self) -> int:
        return self.capacity - self.busy

    def is_running(self, key: BuildKey) -> bool:
        return key in self._by_build

    def running_builds(self) -> List[BuildKey]:
        return list(self._by_build)

    # -- duration history (section 6 load balancing) -------------------------

    def estimate(self, change_id: ChangeId) -> Optional[float]:
        """EWMA of the change's completed build durations, or ``None``."""
        return self._duration_ewma.get(change_id)

    def duration_history(self) -> "OrderedDict[ChangeId, float]":
        """A copy of the per-change EWMA history, in LRU order.

        The history is *backend-shared by construction*: builds executed
        in worker processes report raw step outcomes, the parent merges
        them into canonical durations at the batch quiescent point, and
        :meth:`release` feeds those durations here exactly as it does for
        inline builds.  No backend observes durations into a private
        pool — this accessor exists so tests (and operators) can assert
        that parity instead of trusting it.
        """
        return OrderedDict(self._duration_ewma)

    def observe_duration(self, change_id: ChangeId, minutes: float) -> None:
        """Feed one completed build's duration into the change's EWMA."""
        previous = self._duration_ewma.get(change_id)
        if previous is None:
            self._duration_ewma[change_id] = minutes
        else:
            self._duration_ewma[change_id] = (
                self._ewma_alpha * minutes + (1.0 - self._ewma_alpha) * previous
            )
        self._duration_ewma.move_to_end(change_id)
        while len(self._duration_ewma) > self._history_capacity:
            self._duration_ewma.popitem(last=False)

    def assignment_order(self, keys: Sequence[BuildKey]) -> List[BuildKey]:
        """``keys`` reordered longest-processing-time-first for assignment.

        Builds with historical estimates go first, longest first (the LPT
        greedy keeps the makespan within 4/3 of optimal); builds with no
        history keep their submitted order after them, where least-loaded
        placement alone balances them.  The sort is stable, so equal
        estimates preserve selection order and the result is deterministic.
        """
        if len(keys) <= 1:
            return list(keys)
        estimates = self._duration_ewma
        return sorted(
            keys,
            key=lambda key: -estimates.get(key.change_id, float("-inf")),
        )

    # -- assignment ----------------------------------------------------------

    def assign(self, key: BuildKey, now: float) -> int:
        """Assign a build to the least-loaded free worker; returns its index."""
        if key in self._by_build:
            raise ValueError(f"build {key.label()} already running")
        candidates = [w for w in self._workers if w.busy_with is None]
        if not candidates:
            raise NoWorkerAvailableError(key.label())
        worker = min(candidates, key=lambda w: (w.total_busy, w.index))
        worker.busy_with = key
        worker.busy_since = now
        worker.builds_run += 1
        self._by_build[key] = worker
        return worker.index

    def release(self, key: BuildKey, now: float, completed: bool = True) -> int:
        """Release the worker running ``key``; returns its index.

        ``completed=False`` (an abort) still accrues the worker's busy
        time but keeps the partial interval out of the duration history —
        an aborted build says nothing about how long the change builds.
        """
        worker = self._by_build.pop(key, None)
        if worker is None:
            raise KeyError(f"build {key.label()} not running")
        elapsed = max(0.0, now - worker.busy_since)
        worker.total_busy += elapsed
        worker.busy_with = None
        if completed:
            self.observe_duration(key.change_id, elapsed)
        return worker.index

    # -- accounting ----------------------------------------------------------

    def utilization(self, now: float) -> float:
        """Fraction of wall-clock×capacity spent busy, up to ``now``."""
        if now <= 0.0:
            return 0.0
        total = 0.0
        for worker in self._workers:
            total += worker.total_busy
            if worker.busy_with is not None:
                total += max(0.0, now - worker.busy_since)
        return total / (now * self.capacity)

    def load_imbalance(self, now: Optional[float] = None) -> float:
        """Max-minus-min cumulative busy time across workers.

        With ``now`` given, in-flight builds count their elapsed time too,
        so the figure reflects the pool as it stands rather than only
        finished work.
        """
        if not self._workers:
            return 0.0
        totals = []
        for worker in self._workers:
            total = worker.total_busy
            if now is not None and worker.busy_with is not None:
                total += max(0.0, now - worker.busy_since)
            totals.append(total)
        return max(totals) - min(totals)
