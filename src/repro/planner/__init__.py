"""Planner engine and build controller (paper section 6).

The planner engine runs the epoch loop: ask the strategy for the builds
worth running, abort running builds that fell out of the selection,
schedule new ones onto workers, and commit or reject changes as decisive
build results arrive.  The build controller supplies per-build outcomes
and durations in either fidelity (label mode or full-stack), implements
minimal-build-step elimination, and load-balances workers.
"""

from repro.planner.workers import WorkerPool
from repro.planner.controller import (
    BuildController,
    FullStackBuildController,
    LabelBuildController,
)
from repro.planner.planner import (
    BuildRecord,
    Decision,
    PlannerEngine,
    PlannerView,
    ScheduledBuild,
)

__all__ = [
    "BuildController",
    "BuildRecord",
    "Decision",
    "FullStackBuildController",
    "LabelBuildController",
    "PlannerEngine",
    "PlannerView",
    "ScheduledBuild",
    "WorkerPool",
]
