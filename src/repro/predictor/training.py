"""Training pipeline for the prediction models (section 7.2).

The paper trains on historical changes with a 70/30 train/validation
split, reports ~97 % accuracy, and prunes features with recursive feature
elimination.  This module reproduces that pipeline on synthetic history:
dataset assembly from decided changes, splitting, metrics (accuracy,
precision/recall, AUC), RFE, and a :func:`train_models` entry point that
returns a ready :class:`~repro.predictor.predictors.LearnedPredictor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.changes.change import Change
from repro.changes.truth import potential_conflict, real_conflict
from repro.predictor.features import (
    CONFLICT_FEATURES,
    SUCCESS_FEATURES,
    FeatureExtractor,
)
from repro.predictor.logistic import LogisticRegression
from repro.predictor.predictors import LearnedPredictor


@dataclass
class ClassifierMetrics:
    """Validation metrics for one binary classifier."""

    accuracy: float
    precision: float
    recall: float
    auc: float
    n_samples: int
    positive_rate: float


@dataclass
class TrainingReport:
    """Everything :func:`train_models` learned, for inspection and benches."""

    success_metrics: ClassifierMetrics
    conflict_metrics: ClassifierMetrics
    success_weights: Dict[str, float] = field(default_factory=dict)
    conflict_weights: Dict[str, float] = field(default_factory=dict)
    success_features_kept: Tuple[str, ...] = SUCCESS_FEATURES
    conflict_features_kept: Tuple[str, ...] = CONFLICT_FEATURES

    def top_success_features(self, k: int = 3) -> List[str]:
        """Feature names with the largest positive standardized weights."""
        ranked = sorted(self.success_weights.items(), key=lambda kv: -kv[1])
        return [name for name, _ in ranked[:k]]

    def bottom_success_features(self, k: int = 2) -> List[str]:
        """Feature names with the most negative standardized weights."""
        ranked = sorted(self.success_weights.items(), key=lambda kv: kv[1])
        return [name for name, _ in ranked[:k]]


def train_test_split(
    X: np.ndarray, y: np.ndarray, train_fraction: float = 0.7, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (X_train, y_train, X_valid, y_valid)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(X))
    cut = int(round(len(X) * train_fraction))
    train, valid = order[:cut], order[cut:]
    return X[train], y[train], X[valid], y[valid]


def _rank_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """AUC via the rank-sum (Mann–Whitney) formulation, with tie handling."""
    positives = scores[labels == 1]
    negatives = scores[labels == 0]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    order = np.argsort(np.concatenate([scores]))
    ranks = np.empty(len(scores), dtype=float)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[labels == 1].sum()
    n_pos, n_neg = len(positives), len(negatives)
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def evaluate_classifier(
    model: LogisticRegression, X: np.ndarray, y: np.ndarray
) -> ClassifierMetrics:
    """Accuracy / precision / recall / AUC on a validation set."""
    probabilities = model.predict_proba(X)
    predictions = (probabilities >= 0.5).astype(int)
    y = np.asarray(y).astype(int)
    tp = int(((predictions == 1) & (y == 1)).sum())
    fp = int(((predictions == 1) & (y == 0)).sum())
    fn = int(((predictions == 0) & (y == 1)).sum())
    correct = int((predictions == y).sum())
    return ClassifierMetrics(
        accuracy=correct / len(y) if len(y) else 0.0,
        precision=tp / (tp + fp) if (tp + fp) else 0.0,
        recall=tp / (tp + fn) if (tp + fn) else 0.0,
        auc=_rank_auc(probabilities, y),
        n_samples=len(y),
        positive_rate=float(y.mean()) if len(y) else 0.0,
    )


def recursive_feature_elimination(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Sequence[str],
    keep: int,
    l2: float = 1e-3,
) -> List[int]:
    """RFE: repeatedly drop the feature with the smallest |weight|.

    Returns the indices of the surviving features, in original order.
    Mirrors the paper's use of RFE [25] to "reduce the set of features to
    just the bare minimum".
    """
    if keep <= 0 or keep > len(feature_names):
        raise ValueError("keep must be in [1, n_features]")
    surviving = list(range(len(feature_names)))
    while len(surviving) > keep:
        model = LogisticRegression(l2=l2).fit(X[:, surviving], y)
        weights = np.abs(model.standardized_weights())
        drop_position = int(np.argmin(weights))
        surviving.pop(drop_position)
    return surviving


def assemble_success_dataset(
    changes: Sequence[Change],
    extractor: Optional[FeatureExtractor] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """(X, y) for the success model from labeled historical changes.

    History is replayed in order so the running developer statistics only
    see the past (no label leakage).
    """
    extractor = extractor if extractor is not None else FeatureExtractor()
    rows: List[np.ndarray] = []
    labels: List[int] = []
    for change in changes:
        if change.ground_truth is None:
            raise ValueError(f"{change.change_id} has no ground truth")
        rows.append(extractor.success_vector(change))
        labels.append(1 if change.ground_truth.individually_ok else 0)
        extractor.observe_outcome(change, change.ground_truth.individually_ok)
    return np.vstack(rows), np.asarray(labels)


def assemble_conflict_dataset(
    changes: Sequence[Change],
    extractor: Optional[FeatureExtractor] = None,
    window: int = 40,
) -> Tuple[np.ndarray, np.ndarray]:
    """(X, y) for the conflict model from near-in-time change pairs.

    Pairs each change with its ``window`` predecessors (approximating
    concurrency in the historical stream), keeping only *potentially
    conflicting* pairs — those are the pairs the speculation engine ever
    asks the model about; the label is the ground-truth real-conflict bit.
    """
    extractor = extractor if extractor is not None else FeatureExtractor()
    rows: List[np.ndarray] = []
    labels: List[int] = []
    for index, change in enumerate(changes):
        for other in changes[max(0, index - window) : index]:
            if not potential_conflict(change, other):
                continue
            rows.append(extractor.conflict_vector(change, other))
            conflicted = real_conflict(change, other)
            labels.append(1 if conflicted else 0)
            extractor.observe_conflict(change, other, conflicted)
    if not rows:
        raise ValueError("no potentially-conflicting pairs in the history")
    return np.vstack(rows), np.asarray(labels)


def train_models(
    history: Sequence[Change],
    train_fraction: float = 0.7,
    seed: int = 0,
    l2: float = 1e-3,
) -> Tuple[LearnedPredictor, TrainingReport]:
    """Train success + conflict models on historical changes.

    Follows section 7.2: extract features, 70/30 split, fit logistic
    regression, validate.  Returns the predictor (with a *fresh* extractor
    whose developer history has been warmed by the full replay) and the
    report with metrics and standardized weights.
    """
    warm_extractor = FeatureExtractor()
    X_s, y_s = assemble_success_dataset(history, warm_extractor)
    X_c, y_c = assemble_conflict_dataset(history, warm_extractor)

    Xs_tr, ys_tr, Xs_va, ys_va = train_test_split(X_s, y_s, train_fraction, seed)
    Xc_tr, yc_tr, Xc_va, yc_va = train_test_split(X_c, y_c, train_fraction, seed)

    success_model = LogisticRegression(l2=l2).fit(Xs_tr, ys_tr)
    conflict_model = LogisticRegression(l2=l2).fit(Xc_tr, yc_tr)

    report = TrainingReport(
        success_metrics=evaluate_classifier(success_model, Xs_va, ys_va),
        conflict_metrics=evaluate_classifier(conflict_model, Xc_va, yc_va),
        success_weights=dict(
            zip(SUCCESS_FEATURES, success_model.standardized_weights())
        ),
        conflict_weights=dict(
            zip(CONFLICT_FEATURES, conflict_model.standardized_weights())
        ),
    )
    predictor = LearnedPredictor(success_model, conflict_model, warm_extractor)
    return predictor, report
