"""Predictor interfaces consumed by the speculation engine.

A predictor answers two questions (section 4.2):

* :meth:`Predictor.p_success` — probability that a change's build steps
  pass when applied alone on a healthy HEAD;
* :meth:`Predictor.p_conflict` — probability that two changes *really*
  conflict (pass individually, fail combined).

Implementations:

* :class:`OraclePredictor` — reads ground truth; this is the paper's
  Oracle that "can perfectly predict the outcome of a change" and anchors
  every normalized result.
* :class:`StaticPredictor` — fixed probabilities; with 0.5 it reproduces
  the Speculate-all assumption, with 1.0 the Optimistic one.
* :class:`LearnedPredictor` — the SubmitQueue configuration: two logistic
  models over extracted features, refreshed with dynamic speculation
  counts each epoch.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from repro.buildsys.cache import CacheStats
from repro.changes.change import Change
from repro.changes.state import ChangeRecord
from repro.changes.truth import real_conflict
from repro.predictor.features import FeatureExtractor
from repro.predictor.logistic import LogisticRegression

#: Default LRU capacity for the learned predictor's probability memos —
#: ample for every simulation in the repo while bounding a long service
#: run (the pair cache is quadratic in pending changes).
DEFAULT_PREDICTOR_CACHE_CAPACITY = 1 << 16


def _clamp(p: float) -> float:
    return min(1.0, max(0.0, p))


class _LruCache:
    """Bounded probability memo (the buildsys artifact-cache LRU idiom)."""

    __slots__ = ("capacity", "_entries", "stats")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, float]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[float]:
        value = self._entries.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: tuple, value: float) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1


class Predictor(abc.ABC):
    """Interface between prediction models and the speculation engine."""

    @abc.abstractmethod
    def p_success(
        self, change: Change, record: Optional[ChangeRecord] = None
    ) -> float:
        """P(all build steps pass for the change alone on a green HEAD)."""

    @abc.abstractmethod
    def p_conflict(self, first: Change, second: Change) -> float:
        """P(the two changes really conflict)."""


class OraclePredictor(Predictor):
    """Perfect foresight from ground-truth labels."""

    def p_success(self, change: Change, record: Optional[ChangeRecord] = None) -> float:
        if change.ground_truth is None:
            raise ValueError(f"oracle needs ground truth on {change.change_id}")
        return 1.0 if change.ground_truth.individually_ok else 0.0

    def p_conflict(self, first: Change, second: Change) -> float:
        return 1.0 if real_conflict(first, second) else 0.0


class StaticPredictor(Predictor):
    """Fixed probabilities; the degenerate baselines use this."""

    def __init__(self, success: float = 0.5, conflict: float = 0.5) -> None:
        if not 0.0 <= success <= 1.0 or not 0.0 <= conflict <= 1.0:
            raise ValueError("probabilities must lie in [0, 1]")
        self._success = success
        self._conflict = conflict

    def p_success(self, change: Change, record: Optional[ChangeRecord] = None) -> float:
        return self._success

    def p_conflict(self, first: Change, second: Change) -> float:
        return self._conflict


class LearnedPredictor(Predictor):
    """Logistic-regression predictor over extracted features."""

    def __init__(
        self,
        success_model: LogisticRegression,
        conflict_model: LogisticRegression,
        extractor: Optional[FeatureExtractor] = None,
        cache_capacity: int = DEFAULT_PREDICTOR_CACHE_CAPACITY,
    ) -> None:
        self._success_model = success_model
        self._conflict_model = conflict_model
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        # Planner epochs re-ask the same probabilities thousands of times;
        # cache per (change, dynamic counters) and per pair.  LRU-bounded
        # so a long service run holds memory steady (the pair cache grows
        # quadratically with pending changes otherwise).
        self._success_cache = _LruCache(cache_capacity)
        self._conflict_cache = _LruCache(cache_capacity)

    @property
    def cache_evictions(self) -> int:
        """Entries evicted across both probability memos."""
        return (
            self._success_cache.stats.evictions
            + self._conflict_cache.stats.evictions
        )

    @property
    def cache_stats(self) -> Tuple[CacheStats, CacheStats]:
        """(success-cache, conflict-cache) hit/miss/eviction counters."""
        return self._success_cache.stats, self._conflict_cache.stats

    @staticmethod
    def _success_key(change: Change, record: Optional[ChangeRecord]) -> tuple:
        return (
            change.change_id,
            record.speculations_succeeded if record else 0,
            record.speculations_failed if record else 0,
        )

    def p_success(self, change: Change, record: Optional[ChangeRecord] = None) -> float:
        key = self._success_key(change, record)
        cached = self._success_cache.get(key)
        if cached is None:
            vector = self.extractor.success_vector(change, record)
            cached = _clamp(self._success_model.predict_one(vector))
            self._success_cache.put(key, cached)
        return cached

    def p_success_many(
        self, pairs: Sequence[Tuple[Change, Optional[ChangeRecord]]]
    ) -> List[float]:
        """``p_success`` for a batch, answering cold entries vectorized.

        Cache misses are gathered into one feature matrix and scored with
        a single :meth:`LogisticRegression.predict_many` pass; hits come
        from the memo exactly as :meth:`p_success` would return them.
        """
        values: List[Optional[float]] = []
        cold_vectors: List[Sequence[float]] = []
        cold_indices: List[int] = []
        for index, (change, record) in enumerate(pairs):
            cached = self._success_cache.get(self._success_key(change, record))
            values.append(cached)
            if cached is None:
                cold_vectors.append(self.extractor.success_vector(change, record))
                cold_indices.append(index)
        if cold_indices:
            predicted = self._success_model.predict_many(cold_vectors)
            for index, raw in zip(cold_indices, predicted):
                change, record = pairs[index]
                value = _clamp(float(raw))
                self._success_cache.put(self._success_key(change, record), value)
                values[index] = value
        return values  # type: ignore[return-value]  # every slot is filled now

    def p_conflict(self, first: Change, second: Change) -> float:
        key = (
            (first.change_id, second.change_id)
            if first.change_id <= second.change_id
            else (second.change_id, first.change_id)
        )
        cached = self._conflict_cache.get(key)
        if cached is None:
            vector = self.extractor.conflict_vector(first, second)
            cached = _clamp(self._conflict_model.predict_one(vector))
            self._conflict_cache.put(key, cached)
        return cached

    # Feedback hooks: the planner calls these as changes decide so the
    # running developer statistics stay current.  Cached probabilities for
    # *already-asked* (change, counters) keys are kept — history feedback
    # affects changes submitted later (fresh ids, fresh cache keys), while
    # a pending change's probability still refreshes whenever its dynamic
    # speculation counters move, which is the feedback loop section 7.2
    # singles out as most predictive.
    def observe_outcome(self, change: Change, committed: bool) -> None:
        self.extractor.observe_outcome(change, committed)

    def observe_conflict(self, first: Change, second: Change, conflicted: bool) -> None:
        self.extractor.observe_conflict(first, second, conflicted)
