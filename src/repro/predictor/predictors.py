"""Predictor interfaces consumed by the speculation engine.

A predictor answers two questions (section 4.2):

* :meth:`Predictor.p_success` — probability that a change's build steps
  pass when applied alone on a healthy HEAD;
* :meth:`Predictor.p_conflict` — probability that two changes *really*
  conflict (pass individually, fail combined).

Implementations:

* :class:`OraclePredictor` — reads ground truth; this is the paper's
  Oracle that "can perfectly predict the outcome of a change" and anchors
  every normalized result.
* :class:`StaticPredictor` — fixed probabilities; with 0.5 it reproduces
  the Speculate-all assumption, with 1.0 the Optimistic one.
* :class:`LearnedPredictor` — the SubmitQueue configuration: two logistic
  models over extracted features, refreshed with dynamic speculation
  counts each epoch.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.changes.change import Change
from repro.changes.state import ChangeRecord
from repro.changes.truth import real_conflict
from repro.predictor.features import FeatureExtractor
from repro.predictor.logistic import LogisticRegression


def _clamp(p: float) -> float:
    return min(1.0, max(0.0, p))


class Predictor(abc.ABC):
    """Interface between prediction models and the speculation engine."""

    @abc.abstractmethod
    def p_success(
        self, change: Change, record: Optional[ChangeRecord] = None
    ) -> float:
        """P(all build steps pass for the change alone on a green HEAD)."""

    @abc.abstractmethod
    def p_conflict(self, first: Change, second: Change) -> float:
        """P(the two changes really conflict)."""


class OraclePredictor(Predictor):
    """Perfect foresight from ground-truth labels."""

    def p_success(self, change: Change, record: Optional[ChangeRecord] = None) -> float:
        if change.ground_truth is None:
            raise ValueError(f"oracle needs ground truth on {change.change_id}")
        return 1.0 if change.ground_truth.individually_ok else 0.0

    def p_conflict(self, first: Change, second: Change) -> float:
        return 1.0 if real_conflict(first, second) else 0.0


class StaticPredictor(Predictor):
    """Fixed probabilities; the degenerate baselines use this."""

    def __init__(self, success: float = 0.5, conflict: float = 0.5) -> None:
        if not 0.0 <= success <= 1.0 or not 0.0 <= conflict <= 1.0:
            raise ValueError("probabilities must lie in [0, 1]")
        self._success = success
        self._conflict = conflict

    def p_success(self, change: Change, record: Optional[ChangeRecord] = None) -> float:
        return self._success

    def p_conflict(self, first: Change, second: Change) -> float:
        return self._conflict


class LearnedPredictor(Predictor):
    """Logistic-regression predictor over extracted features."""

    def __init__(
        self,
        success_model: LogisticRegression,
        conflict_model: LogisticRegression,
        extractor: Optional[FeatureExtractor] = None,
    ) -> None:
        self._success_model = success_model
        self._conflict_model = conflict_model
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        # Planner epochs re-ask the same probabilities thousands of times;
        # cache per (change, dynamic counters) and per pair.  Caches are
        # invalidated by the feedback hooks (developer history moved).
        self._success_cache: dict = {}
        self._conflict_cache: dict = {}

    def p_success(self, change: Change, record: Optional[ChangeRecord] = None) -> float:
        key = (
            change.change_id,
            record.speculations_succeeded if record else 0,
            record.speculations_failed if record else 0,
        )
        cached = self._success_cache.get(key)
        if cached is None:
            vector = self.extractor.success_vector(change, record)
            cached = _clamp(self._success_model.predict_one(vector))
            self._success_cache[key] = cached
        return cached

    def p_conflict(self, first: Change, second: Change) -> float:
        key = (
            (first.change_id, second.change_id)
            if first.change_id <= second.change_id
            else (second.change_id, first.change_id)
        )
        cached = self._conflict_cache.get(key)
        if cached is None:
            vector = self.extractor.conflict_vector(first, second)
            cached = _clamp(self._conflict_model.predict_one(vector))
            self._conflict_cache[key] = cached
        return cached

    # Feedback hooks: the planner calls these as changes decide so the
    # running developer statistics stay current.  Cached probabilities for
    # *already-asked* (change, counters) keys are kept — history feedback
    # affects changes submitted later (fresh ids, fresh cache keys), while
    # a pending change's probability still refreshes whenever its dynamic
    # speculation counters move, which is the feedback loop section 7.2
    # singles out as most predictive.
    def observe_outcome(self, change: Change, committed: bool) -> None:
        self.extractor.observe_outcome(change, committed)

    def observe_conflict(self, first: Change, second: Change, conflicted: bool) -> None:
        self.extractor.observe_conflict(first, second, conflicted)
