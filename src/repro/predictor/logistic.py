"""Logistic regression on numpy.

The paper trains its models with scikit-learn; that package is a
substitution boundary here, so the same model family is implemented
directly: L2-regularized logistic regression fitted by full-batch
gradient descent with backtracking on the learning rate, plus input
standardization so regularization treats features symmetrically.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import NotFittedError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite for extreme logits.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500.0, 500.0)))


class LogisticRegression:
    """L2-regularized binary logistic regression.

    Parameters
    ----------
    l2:
        Regularization strength (applied to weights, not the intercept).
    learning_rate:
        Initial gradient-descent step size; halved when a step fails to
        reduce the loss.
    max_iter:
        Gradient steps before giving up.
    tol:
        Convergence threshold on the loss decrease.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 1.0,
        max_iter: int = 500,
        tol: float = 1e-7,
    ) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.weights_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self.n_iter_: int = 0

    # -- fitting ----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on a (n_samples, n_features) matrix and 0/1 labels."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.isin(y, (0.0, 1.0)).all():
            raise ValueError("labels must be 0/1")

        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        Xs = (X - self._mean) / self._std

        n, d = Xs.shape
        w = np.zeros(d)
        b = float(np.log((y.mean() + 1e-9) / (1.0 - y.mean() + 1e-9)))
        rate = self.learning_rate
        loss = self._loss(Xs, y, w, b)
        for iteration in range(self.max_iter):
            p = _sigmoid(Xs @ w + b)
            error = p - y
            grad_w = Xs.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            # Backtracking: shrink the step until the loss improves.
            while rate > 1e-8:
                w_new = w - rate * grad_w
                b_new = b - rate * grad_b
                loss_new = self._loss(Xs, y, w_new, b_new)
                if loss_new <= loss:
                    break
                rate *= 0.5
            else:
                break
            improvement = loss - loss_new
            w, b, loss = w_new, b_new, loss_new
            self.n_iter_ = iteration + 1
            if improvement < self.tol:
                break
        self.weights_ = w
        self.intercept_ = b
        return self

    def _loss(self, Xs: np.ndarray, y: np.ndarray, w: np.ndarray, b: float) -> float:
        p = _sigmoid(Xs @ w + b)
        eps = 1e-12
        nll = -np.mean(y * np.log(p + eps) + (1.0 - y) * np.log(1.0 - p + eps))
        return float(nll + 0.5 * self.l2 * float(w @ w))

    # -- prediction ---------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.weights_ is None or self._mean is None or self._std is None:
            raise NotFittedError("model used before fit()")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw logits for a sample matrix."""
        self._require_fitted()
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        Xs = (X - self._mean) / self._std
        z = Xs @ self.weights_ + self.intercept_
        return z[0] if single else z

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(label == 1) for each sample."""
        return _sigmoid(np.asarray(self.decision_function(X)))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at ``threshold``."""
        return (self.predict_proba(X) >= threshold).astype(int)

    def predict_one(self, x: Sequence[float]) -> float:
        """P(label == 1) for a single feature vector."""
        return float(self.predict_proba(np.asarray(x, dtype=float)))

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        """P(label == 1) for a batch of feature vectors, vectorized.

        One standardize + matvec + sigmoid pass over the whole
        (n_samples, n_features) matrix — callers with many cold samples
        (the speculation engine's per-epoch ``p_success`` refresh) use
        this instead of ``n`` ``predict_one`` round trips.
        """
        X = np.asarray(X, dtype=float)
        if X.size == 0:
            return np.zeros(0, dtype=float)
        if X.ndim != 2:
            raise ValueError("predict_many expects a 2-dimensional matrix")
        return self.predict_proba(X)

    # -- introspection ----------------------------------------------------

    def standardized_weights(self) -> np.ndarray:
        """Weights in standardized-feature space (comparable magnitudes)."""
        self._require_fitted()
        assert self.weights_ is not None
        return self.weights_.copy()
