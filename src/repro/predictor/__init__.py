"""Outcome prediction (paper sections 4.2 and 7.2).

SubmitQueue steers speculation with two learned quantities:

* ``P_succ(C)`` — probability a change's build steps pass when applied
  alone on a healthy HEAD;
* ``P_conf(Ci, Cj)`` — probability two changes *really* conflict (pass
  individually, fail together).

Both are logistic-regression models over handpicked change / revision /
developer / speculation-history features.  This package implements the
model (on numpy, no scikit dependency), the feature extraction, the
training pipeline with recursive feature elimination, and the predictor
interfaces the speculation engine consumes — including the Oracle used to
normalize every evaluation result.
"""

from repro.predictor.logistic import LogisticRegression
from repro.predictor.features import (
    CONFLICT_FEATURES,
    SUCCESS_FEATURES,
    FeatureExtractor,
)
from repro.predictor.predictors import (
    LearnedPredictor,
    OraclePredictor,
    Predictor,
    StaticPredictor,
)
from repro.predictor.training import (
    TrainingReport,
    evaluate_classifier,
    recursive_feature_elimination,
    train_models,
    train_test_split,
)

__all__ = [
    "CONFLICT_FEATURES",
    "FeatureExtractor",
    "LearnedPredictor",
    "LogisticRegression",
    "OraclePredictor",
    "Predictor",
    "StaticPredictor",
    "SUCCESS_FEATURES",
    "TrainingReport",
    "evaluate_classifier",
    "recursive_feature_elimination",
    "train_models",
    "train_test_split",
]
