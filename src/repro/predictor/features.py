"""Feature extraction for the success and conflict models (section 7.2).

The paper hand-picked ~100 features in four groups — change, revision,
developer, and speculation history.  This extractor implements the ones
the paper names explicitly (the highest-correlation survivors of their
recursive feature elimination) plus the running developer statistics it
describes:

* change: affected-target count, commit count, files/lines/hunks changed,
  binaries added or removed, initial presubmit test status;
* revision: submit count, revert plan, test plan;
* developer: tenure, level, running land success rate, and for conflicts
  the pairwise developer conflict history ("developers working on the same
  set of features conflict with each other more often");
* speculation: number of succeeded and failed speculations so far —
  dynamic features refreshed every epoch.

The extractor is stateful: :meth:`observe_outcome` and
:meth:`observe_conflict` feed back decided changes so the developer
statistics track history, exactly as a production deployment would.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.changes.change import Change
from repro.changes.state import ChangeRecord
from repro.types import DeveloperId

#: Ordered names of the success-model features.
SUCCESS_FEATURES: Tuple[str, ...] = (
    "n_affected_targets",
    "n_commits",
    "n_files_changed",
    "n_lines_added",
    "n_hunks",
    "n_binaries_changed",
    "initial_tests_passed",
    "revision_submit_count",
    "has_revert_plan",
    "has_test_plan",
    "dev_tenure_years",
    "dev_level",
    "dev_success_rate",
    "dev_land_attempts",
    "speculations_succeeded",
    "speculations_failed",
)

#: Ordered names of the conflict-model features.
CONFLICT_FEATURES: Tuple[str, ...] = (
    "shared_targets",
    "overlap_jaccard",
    "min_affected_targets",
    "max_affected_targets",
    "same_developer",
    "dev_pair_conflict_rate",
    "submit_gap",
    "either_changes_build_graph",
    "combined_lines",
    "combined_fragility",
    "module_overlap",
)


@dataclass
class _DeveloperHistory:
    """Running land statistics for one developer."""

    attempts: int = 0
    successes: int = 0

    @property
    def success_rate(self) -> float:
        # Laplace-smoothed so new developers start at the prior 0.5.
        return (self.successes + 1.0) / (self.attempts + 2.0)


@dataclass
class _PairHistory:
    """Running conflict statistics for a developer pair."""

    checks: int = 0
    conflicts: int = 0

    @property
    def conflict_rate(self) -> float:
        return (self.conflicts + 1.0) / (self.checks + 10.0)


class FeatureExtractor:
    """Turns changes (and change pairs) into model feature vectors."""

    def __init__(self) -> None:
        self._dev_history: Dict[DeveloperId, _DeveloperHistory] = defaultdict(
            _DeveloperHistory
        )
        self._pair_history: Dict[Tuple[DeveloperId, DeveloperId], _PairHistory] = (
            defaultdict(_PairHistory)
        )
        self._revision_submits: Dict[str, int] = defaultdict(int)

    # -- static helpers -----------------------------------------------------

    @staticmethod
    def _affected_count(change: Change) -> float:
        if "n_affected_targets" in change.features:
            return change.features["n_affected_targets"]
        if change.ground_truth is not None:
            return float(len(change.ground_truth.target_names))
        return 1.0

    @staticmethod
    def _feature(change: Change, name: str, default: float = 0.0) -> float:
        return float(change.features.get(name, default))

    # -- success model ------------------------------------------------------

    def success_vector(
        self, change: Change, record: Optional[ChangeRecord] = None
    ) -> np.ndarray:
        """Feature vector for ``P_succ``; order matches SUCCESS_FEATURES."""
        developer = change.developer
        history = self._dev_history[developer.developer_id]
        lines = self._feature(change, "n_lines_added",
                              float(change.patch.touched_lines()) if change.patch else 10.0)
        files = self._feature(change, "n_files_changed",
                              float(len(change.patch)) if change.patch else 1.0)
        revision_submits = self._feature(
            change,
            "revision_submit_count",
            float(self._revision_submits[change.revision_id]),
        )
        values = [
            self._affected_count(change),
            self._feature(change, "n_commits", 1.0),
            files,
            lines,
            self._feature(change, "n_hunks", max(1.0, files)),
            self._feature(change, "n_binaries_changed", 0.0),
            self._feature(change, "initial_tests_passed", 1.0),
            revision_submits,
            self._feature(change, "has_revert_plan", 1.0),
            self._feature(change, "has_test_plan", 1.0),
            developer.tenure_years,
            float(developer.level),
            history.success_rate,
            float(history.attempts),
            float(record.speculations_succeeded) if record else 0.0,
            float(record.speculations_failed) if record else 0.0,
        ]
        return np.asarray(values, dtype=float)

    # -- conflict model ---------------------------------------------------

    def conflict_vector(self, first: Change, second: Change) -> np.ndarray:
        """Feature vector for ``P_conf``; order matches CONFLICT_FEATURES."""
        names_a = (
            first.ground_truth.target_names if first.ground_truth else frozenset()
        )
        names_b = (
            second.ground_truth.target_names if second.ground_truth else frozenset()
        )
        shared = len(names_a & names_b)
        union = len(names_a | names_b)
        count_a = self._affected_count(first)
        count_b = self._affected_count(second)
        pair = self._pair_key(first.developer_id, second.developer_id)
        graph_change = 0.0
        for change in (first, second):
            if change.ground_truth is not None and change.ground_truth.changes_build_graph:
                graph_change = 1.0
        lines_a = self._feature(first, "n_lines_added", 10.0)
        lines_b = self._feature(second, "n_lines_added", 10.0)
        fine_a = (
            first.ground_truth.fine_names() if first.ground_truth else frozenset()
        )
        fine_b = (
            second.ground_truth.fine_names() if second.ground_truth else frozenset()
        )
        values = [
            float(shared),
            (shared / union) if union else 0.0,
            min(count_a, count_b),
            max(count_a, count_b),
            1.0 if first.developer_id == second.developer_id else 0.0,
            self._pair_history[pair].conflict_rate,
            abs(first.submitted_at - second.submitted_at),
            graph_change,
            lines_a + lines_b,
            first.developer.area_fragility + second.developer.area_fragility,
            float(len(fine_a & fine_b)),
        ]
        return np.asarray(values, dtype=float)

    @staticmethod
    def _pair_key(a: DeveloperId, b: DeveloperId) -> Tuple[DeveloperId, DeveloperId]:
        return (a, b) if a <= b else (b, a)

    # -- history feedback ---------------------------------------------------

    def observe_submit(self, change: Change) -> None:
        """Count a submit attempt against its revision."""
        self._revision_submits[change.revision_id] += 1

    def observe_outcome(self, change: Change, committed: bool) -> None:
        """Feed a decided change back into developer history."""
        history = self._dev_history[change.developer_id]
        history.attempts += 1
        if committed:
            history.successes += 1

    def observe_conflict(
        self, first: Change, second: Change, conflicted: bool
    ) -> None:
        """Feed an observed (non-)conflict back into pair history."""
        pair = self._pair_key(first.developer_id, second.developer_id)
        history = self._pair_history[pair]
        history.checks += 1
        if conflicted:
            history.conflicts += 1

    def developer_success_rate(self, developer_id: DeveloperId) -> float:
        return self._dev_history[developer_id].success_rate
