"""Exception hierarchy for the SubmitQueue reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the service boundary.  Subsystems define
narrower types below so tests and callers can assert on precise failure
modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class VcsError(ReproError):
    """Base class for version-control errors."""


class UnknownCommitError(VcsError):
    """A commit id was not found in the repository."""


class UnknownFileError(VcsError):
    """A file path was not found in a snapshot."""


class PatchConflictError(VcsError):
    """A patch could not be applied because of a textual conflict."""

    def __init__(self, path: str, reason: str = "") -> None:
        self.path = path
        self.reason = reason
        message = f"patch conflicts at {path!r}"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)


class BuildSystemError(ReproError):
    """Base class for build-system errors."""


class BuildFileError(BuildSystemError):
    """A BUILD file could not be parsed."""


class UnknownTargetError(BuildSystemError):
    """A target name was not found in the build graph."""


class DependencyCycleError(BuildSystemError):
    """The target graph contains a dependency cycle."""

    def __init__(self, cycle: list) -> None:
        self.cycle = list(cycle)
        super().__init__("dependency cycle: " + " -> ".join(map(str, self.cycle)))


class ChangeError(ReproError):
    """Base class for change-lifecycle errors."""


class UnknownChangeError(ChangeError):
    """A change id was not found."""


class IllegalTransitionError(ChangeError):
    """A change-state transition violated the lifecycle state machine."""

    def __init__(self, current, requested) -> None:
        self.current = current
        self.requested = requested
        super().__init__(f"illegal change transition {current} -> {requested}")


class SpeculationError(ReproError):
    """Base class for speculation-engine errors."""


class PlannerError(ReproError):
    """Base class for planner/build-controller errors."""


class NoWorkerAvailableError(PlannerError):
    """A build was dispatched while no worker slot was free."""


class PredictorError(ReproError):
    """Base class for prediction-model errors."""


class NotFittedError(PredictorError):
    """A learned model was used before being trained."""


class SimulationError(ReproError):
    """Base class for discrete-event-simulation errors."""


class ClockError(SimulationError):
    """Simulated time would move backwards."""


class WorkloadError(ReproError):
    """Base class for workload-generation errors."""


class JournalError(ReproError):
    """Base class for durable-journal errors."""


class JournalCorruptError(JournalError):
    """A journal file is structurally invalid (bad CRC, bad JSON, unknown
    schema version, or a malformed record in the interior of the log).

    A *torn final record* — the partially written tail a crash leaves —
    is not corruption; recovery silently truncates to the last valid
    prefix instead of raising this.
    """

    def __init__(self, message: str, line: "int | None" = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class JournalReplayError(JournalError):
    """Replay diverged from the journal.

    Raised when re-driving the journaled inputs makes the service emit a
    record that differs from the journaled one (or skip one entirely) —
    the deterministic-replay contract is broken and the recovered state
    cannot be trusted.
    """


class ParallelExecutionError(ReproError):
    """A parallel build backend failed outside the build semantics.

    Covers malformed backend specs, broken worker pools, and worker-side
    crashes (which workers report as data, never as raw tracebacks).
    Build-semantic failures — failing steps, merge conflicts — are *not*
    errors; they come back as ordinary failed ``BuildExecution`` results,
    exactly as the serial path reports them.
    """


class ShardingError(ReproError):
    """A queue-backend spec or partitioner operation was invalid.

    Covers malformed ``create_queue_backend`` specs and partitioner
    misuse (zero shard counts, routing against a stale graph).  Conflict
    verdicts themselves never raise through here — sharding is an
    acceleration layer whose answers are bit-identical to the monolithic
    analyzer's.
    """


class ObservabilityError(ReproError):
    """Base class for metrics/tracing errors."""


class MetricsError(ObservabilityError):
    """A metric was registered or updated inconsistently."""


class TraceError(ObservabilityError):
    """A trace file or span operation was malformed."""
