"""The parallel-throughput cell: one figure-12-shaped workload, any backend.

Shared by the CLI demo (``python -m repro parallel``), the wall-clock
benchmark (``benchmarks/test_parallel_throughput.py``), and the oracle
tests: mint the workload *once* with :func:`mint_cell`, then drive
identical copies of it through :func:`run_cell` under different backends
and compare wall clocks — the state fingerprints must match exactly.

Change ids come from a process-global counter, so mirrored runs must
share one minted change list (deep-copied per run; ``Change`` is
mutable) over private copies of one snapshot — exactly what the two
functions provide.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.changes.change import Change
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo

#: The figure-12 monorepo shape (the throughput-evaluation workload).
FIGURE12_SPEC = MonorepoSpec(layers=(8, 12, 16, 12, 8), fan_in=2)


def mint_cell(
    seed: int = 23,
    count: int = 16,
    spec: MonorepoSpec = FIGURE12_SPEC,
    stride: int = 3,
) -> Tuple[Dict[str, str], List[Change]]:
    """One workload: the base snapshot plus ``count`` clean changes.

    Returns ``(files, changes)``; every :func:`run_cell` over them sees
    the identical inputs.
    """
    synth = SyntheticMonorepo(spec, seed=seed)
    targets = synth.target_names()
    changes = [
        synth.make_clean_change(
            target_name=targets[(stride * index) % len(targets)],
            submitted_at=0.0,
        )
        for index in range(count)
    ]
    return synth.repo.snapshot().to_dict(), changes


@dataclass(frozen=True)
class CellResult:
    """One backend's run over the minted cell."""

    backend: str
    wall_seconds: float
    fingerprint: str
    decisions: Tuple[Tuple[str, bool, float], ...]
    builds_started: int
    steps_executed: int
    sim_minutes: float = 0.0
    mainline_green: bool = True

    @property
    def committed(self) -> int:
        return sum(1 for _, committed, _ in self.decisions if committed)

    @property
    def changes_per_hour(self) -> float:
        """Simulated-time landing rate (the paper's figure-12 metric)."""
        if self.sim_minutes <= 0.0:
            return 0.0
        return self.committed / self.sim_minutes * 60.0


def run_cell(
    files: Dict[str, str],
    changes: List[Change],
    backend: Optional[str] = None,
    parallel_workers: Optional[int] = None,
    service_workers: int = 8,
    step_wall_seconds: float = 0.0,
    recorder: Recorder = NULL_RECORDER,
    batching: bool = False,
    queue_backend: Optional[str] = None,
) -> CellResult:
    """Submit every change, pump to a decision, time the whole cell.

    ``step_wall_seconds`` models the real compile/test subprocess each
    executed step would spawn; with it at zero the cell measures pure
    orchestration overhead instead of build-phase wall clock.

    ``batching`` swaps the plain SubmitQueue strategy for the risk-aware
    batching strategy (same predictor), so mirrored runs compare landing
    rates with everything else held fixed.

    ``queue_backend`` selects the pending-queue/analyzer pair (the
    ``repro.sharding.create_queue_backend`` seam, e.g. ``"sharded:4"``);
    ``None`` keeps the monolithic pair.  Fingerprints must match across
    queue backends exactly as they do across build backends.
    """
    from repro.predictor.predictors import StaticPredictor
    from repro.service.core import CoreService, CoreServiceConfig
    from repro.strategies.submitqueue import SubmitQueueStrategy
    from repro.vcs.repository import Repository

    predictor = StaticPredictor(success=0.9, conflict=0.05)
    if batching:
        from repro.strategies.risk_batch import RiskBatchStrategy

        strategy = RiskBatchStrategy(predictor)
    else:
        strategy = SubmitQueueStrategy(predictor)
    service = CoreService(
        Repository(dict(files)),
        strategy,
        config=CoreServiceConfig(
            workers=service_workers,
            build_backend=backend,
            parallel_workers=parallel_workers,
            step_wall_seconds=step_wall_seconds,
            queue_backend=queue_backend,
        ),
        recorder=recorder,
    )
    batch = copy.deepcopy(changes)
    started = time.perf_counter()
    for change in batch:
        service.submit(change)
    decisions = service.pump()
    wall = time.perf_counter() - started

    from repro.journal.fingerprint import fingerprint_digest

    fingerprint = fingerprint_digest(service)
    stats = service.planner.stats
    sim_minutes = service.clock.now
    mainline_green = all(service.repo.mainline_green_flags())
    label = backend or "serial"
    if backend == "process" or (backend or "").startswith("process:"):
        workers = parallel_workers
        if workers is None and service.backend is not None:
            workers = service.backend.worker_count
        label = f"process:{workers}"
    if queue_backend is not None:
        label = f"{label}+{queue_backend}"
    service.close()
    return CellResult(
        backend=label,
        wall_seconds=wall,
        fingerprint=fingerprint,
        decisions=tuple(
            (d.change_id, d.committed, d.at) for d in decisions
        ),
        builds_started=stats.builds_started,
        steps_executed=stats.steps_executed,
        sim_minutes=sim_minutes,
        mainline_green=mainline_green,
    )
