"""Process-parallel speculation builds (ROADMAP item: multi-core scale-out).

Backend selection lives in exactly one place — :func:`create_build_backend`
— mirroring the AutoQueueBackend pattern: callers name a *spec* string,
never a concrete class, and everything upstream of the backend seam
(`BuildExecutor`, `WorkerPool`, the planner) stays backend-agnostic.

Specs:

``"local"``
    Inline serial execution — the correctness oracle.
``"process"`` / ``"process:N"``
    A ``ProcessPoolExecutor`` with ``os.cpu_count()`` (or ``N``) workers.
``"auto"``
    ``process`` when the machine has more than one core, else ``local``.

This package is imported lazily: the serial service path never touches
it (enforced by a dep-hygiene test and a CI check), so selecting no
backend costs nothing.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ParallelExecutionError
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.parallel.backend import (
    BuildBackend,
    LocalBuildBackend,
    ProcessBuildBackend,
)
from repro.parallel.payload import BuildRequest, BuildResponse, StepRecord
from repro.parallel.worker import execute_request

__all__ = [
    "BuildBackend",
    "BuildRequest",
    "BuildResponse",
    "LocalBuildBackend",
    "ParallelExecutionError",
    "ProcessBuildBackend",
    "StepRecord",
    "create_build_backend",
    "execute_request",
]


def create_build_backend(
    spec: str = "auto",
    *,
    workers: Optional[int] = None,
    recorder: Recorder = NULL_RECORDER,
) -> BuildBackend:
    """The canonical backend factory — the only component that knows the
    concrete backend classes.

    ``workers`` overrides the worker count for process backends (a
    ``process:N`` suffix in the spec wins over the keyword).
    """
    name, _, suffix = (spec or "auto").partition(":")
    name = name.strip().lower()
    if suffix:
        try:
            workers = int(suffix)
        except ValueError:
            raise ParallelExecutionError(
                f"malformed backend spec {spec!r}: worker count must be an integer"
            )
    if name == "auto":
        cores = os.cpu_count() or 1
        name = "process" if cores > 1 else "local"
        if workers is None:
            workers = cores
    if name == "local":
        return LocalBuildBackend(recorder=recorder)
    if name == "process":
        count = workers if workers is not None else (os.cpu_count() or 1)
        return ProcessBuildBackend(count, recorder=recorder)
    raise ParallelExecutionError(
        f"unknown build backend {spec!r} (expected auto, local, or process[:N])"
    )
