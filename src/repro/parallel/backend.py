"""Build backends: where a batch of speculation builds physically runs.

Exactly one seam, in two tempos.  :meth:`BuildBackend.submit_batch`
hands a batch of picklable :class:`~repro.parallel.payload.BuildRequest`
objects to the backend and returns a token immediately — the overlapped
pump loop keeps planning while the work runs.  :meth:`BuildBackend.collect`
blocks on a token and returns the batch's
:class:`~repro.parallel.payload.BuildResponse` objects **in request
order** — the deterministic quiescent point.  :meth:`BuildBackend.run_batch`
is the synchronous composition of the two.  Everything upstream
(`BuildExecutor`, `WorkerPool`, the planner) is backend-agnostic; only
:func:`repro.parallel.create_build_backend` knows the concrete classes.

* :class:`LocalBuildBackend` — runs each request inline on the calling
  thread.  The serial correctness oracle and the fallback when no extra
  cores are available.
* :class:`ProcessBuildBackend` — fans requests out to a
  ``concurrent.futures.ProcessPoolExecutor``.  Completion order is
  nondeterministic; responses are *collected* as they land (so the
  parent can overlap useful work via ``idle_hook``) but *returned*
  sorted back into request order, which is what keeps decisions
  bit-identical to the serial oracle.
"""

from __future__ import annotations

import abc
import sys
import time
from typing import Callable, List, Optional, Sequence

from repro.errors import ParallelExecutionError
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.parallel.payload import BuildRequest, BuildResponse
from repro.parallel.worker import execute_request

#: How long ``run_batch`` waits on the pool before giving the idle hook
#: another turn (seconds).  Purely a latency/overlap knob — results are
#: re-ordered at the end, so the value can never affect behaviour.
IDLE_POLL_SECONDS = 0.002

#: Bucket bounds for *wall-clock seconds* (the sim-minute defaults are
#: far too coarse for sub-second build requests).
WALL_SECOND_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _BackendMetrics:
    """Hoisted recorder handles shared by both backends.

    Per-worker utilization histograms are labelled by a stable *slot*
    index (pids churn across pool restarts; slots are bounded by
    ``worker_count``, keeping label cardinality fixed).
    """

    __slots__ = ("_recorder", "_backend", "dispatched", "inflight", "batch_seconds", "_busy")

    def __init__(self, recorder: Recorder, backend: str) -> None:
        self._recorder = recorder
        self._backend = backend
        self.dispatched = recorder.counter(
            "executor_parallel_dispatched_total",
            "Build requests handed to a build backend.",
            labels={"backend": backend},
        )
        self.inflight = recorder.gauge(
            "executor_parallel_inflight",
            "Build requests currently executing in the backend.",
            labels={"backend": backend},
        )
        self.batch_seconds = recorder.histogram(
            "executor_parallel_batch_seconds",
            "Wall seconds spent completing one run_batch call.",
            buckets=WALL_SECOND_BUCKETS,
        )
        self._busy: dict = {}

    def observe_busy(self, slot: int, seconds: float) -> None:
        handle = self._busy.get(slot)
        if handle is None:
            handle = self._recorder.histogram(
                "executor_parallel_worker_busy_seconds",
                "Wall seconds one worker process spent on one build request.",
                labels={"backend": self._backend, "worker": str(slot)},
                buckets=WALL_SECOND_BUCKETS,
            )
            self._busy[slot] = handle
        handle.observe(seconds)


class BuildBackend(abc.ABC):
    """Where build requests physically execute."""

    #: Human-readable backend name (shows up in metrics labels and CLI).
    name: str = "abstract"
    #: Processes the backend can keep busy simultaneously (1 = serial).
    worker_count: int = 1

    def __init__(self) -> None:
        self._next_token = 0
        self._deferred: dict = {}

    @abc.abstractmethod
    def run_batch(
        self,
        requests: Sequence[BuildRequest],
        idle_hook: Optional[Callable[[], None]] = None,
    ) -> List[BuildResponse]:
        """Execute every request; return responses in *request order*.

        ``idle_hook`` is called repeatedly while the backend waits on
        remote work — the parent's chance to overlap pump-loop work
        (e.g. warming conflict analyses for queued submissions).  Hooks
        must be outcome-neutral: nothing they do may change what the
        batch returns.
        """

    def submit_batch(self, requests: Sequence[BuildRequest]) -> int:
        """Hand a batch over for execution; return a token immediately.

        The base implementation merely parks the requests and executes
        them inside :meth:`collect` — correct (and exactly the serial
        oracle's tempo) for any backend without real asynchrony.
        Concurrent backends override this to start work *now*.
        """
        token = self._next_token
        self._next_token += 1
        self._deferred[token] = list(requests)
        return token

    def collect(
        self,
        token: int,
        idle_hook: Optional[Callable[[], None]] = None,
    ) -> List[BuildResponse]:
        """Block until ``token``'s batch is done; responses in request order."""
        requests = self._deferred.pop(token, None)
        if requests is None:
            raise ParallelExecutionError(f"unknown or already-collected batch token {token}")
        return self.run_batch(requests, idle_hook=idle_hook)

    def close(self) -> None:
        """Release pool resources; idempotent."""

    def __enter__(self) -> "BuildBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalBuildBackend(BuildBackend):
    """Inline execution on the calling thread — the serial oracle."""

    name = "local"
    worker_count = 1

    def __init__(self, recorder: Recorder = NULL_RECORDER) -> None:
        super().__init__()
        self._metrics = (
            _BackendMetrics(recorder, self.name) if recorder.enabled else None
        )

    def run_batch(
        self,
        requests: Sequence[BuildRequest],
        idle_hook: Optional[Callable[[], None]] = None,
    ) -> List[BuildResponse]:
        started = time.perf_counter()
        metrics = self._metrics
        responses: List[BuildResponse] = []
        for request in requests:
            if metrics is not None:
                metrics.dispatched.inc()
                metrics.inflight.set(1)
            response = execute_request(request)
            responses.append(response)
            if metrics is not None:
                metrics.inflight.set(0)
                metrics.observe_busy(0, response.wall_seconds)
        if metrics is not None:
            metrics.batch_seconds.observe(time.perf_counter() - started)
        return responses


class ProcessBuildBackend(BuildBackend):
    """Fan-out over a ``ProcessPoolExecutor``.

    The pool is created lazily on the first batch (so merely selecting
    the backend costs nothing) with the ``fork`` start method where the
    platform offers it: workers inherit the loaded module state instead
    of re-importing it, which keeps per-batch dispatch cheap.
    """

    name = "process"

    def __init__(
        self, workers: int, recorder: Recorder = NULL_RECORDER
    ) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("process backend needs at least 1 worker")
        self.worker_count = workers
        self._pool = None
        self._slot_by_pid: dict = {}
        #: token -> (futures-by-position dict, request labels, submit wall time)
        self._inflight: dict = {}
        self._metrics = (
            _BackendMetrics(recorder, self.name) if recorder.enabled else None
        )

    def _ensure_pool(self):
        if self._pool is None:
            import concurrent.futures
            import multiprocessing

            context = None
            if sys.platform != "win32":
                context = multiprocessing.get_context("fork")
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.worker_count, mp_context=context
            )
        return self._pool

    def submit_batch(self, requests: Sequence[BuildRequest]) -> int:
        """Ship the whole batch to the pool *now* and return immediately.

        This is where the overlap comes from: the parent keeps accepting
        submissions and planning further epochs while these requests
        execute in worker processes.
        """
        token = self._next_token
        self._next_token += 1
        pool = self._ensure_pool()
        metrics = self._metrics
        futures = {}
        for position, request in enumerate(requests):
            futures[pool.submit(execute_request, request)] = position
            if metrics is not None:
                metrics.dispatched.inc()
        self._inflight[token] = (
            futures,
            [request.label() for request in requests],
            time.perf_counter(),
        )
        if metrics is not None:
            metrics.inflight.set(self._inflight_count())
        return token

    def _inflight_count(self) -> int:
        return sum(
            1
            for futures, _, _ in self._inflight.values()
            for future in futures
            if not future.done()
        )

    def collect(
        self,
        token: int,
        idle_hook: Optional[Callable[[], None]] = None,
    ) -> List[BuildResponse]:
        import concurrent.futures

        entry = self._inflight.pop(token, None)
        if entry is None:
            raise ParallelExecutionError(f"unknown or already-collected batch token {token}")
        futures, labels, started = entry
        metrics = self._metrics
        ordered: List[Optional[BuildResponse]] = [None] * len(labels)
        pending = set(futures)
        while pending:
            done, pending = concurrent.futures.wait(
                pending,
                timeout=IDLE_POLL_SECONDS if idle_hook is not None else None,
            )
            for future in done:
                position = futures[future]
                try:
                    response = future.result()
                except Exception as exc:  # broken pool, unpicklable result
                    raise ParallelExecutionError(
                        f"worker process failed for {labels[position]}: {exc}"
                    ) from exc
                ordered[position] = response
                if metrics is not None:
                    slot = self._slot_by_pid.setdefault(
                        response.worker_pid, len(self._slot_by_pid)
                    )
                    metrics.observe_busy(slot, response.wall_seconds)
            if metrics is not None:
                metrics.inflight.set(self._inflight_count() + len(pending))
            if idle_hook is not None and pending:
                idle_hook()
        if metrics is not None:
            metrics.batch_seconds.observe(time.perf_counter() - started)
        return [response for response in ordered if response is not None]

    def run_batch(
        self,
        requests: Sequence[BuildRequest],
        idle_hook: Optional[Callable[[], None]] = None,
    ) -> List[BuildResponse]:
        return self.collect(self.submit_batch(requests), idle_hook=idle_hook)

    def close(self) -> None:
        # Drain anything still in flight so worker processes exit cleanly
        # even when a batch was dispatched and never collected.
        for futures, _, _ in self._inflight.values():
            for future in futures:
                future.cancel()
        self._inflight.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
