"""Worker-process side of parallel speculation builds.

:func:`execute_request` is the single entrypoint a pool worker runs.  It
is deliberately a *top-level function over picklable data* — process
dispatch pickles ``(fn, request)``, so nothing here may be a lambda, a
bound method, or a closure.

Workers are **stateless step executors**: each request is evaluated
hermetically against its own merged snapshot, every step in the affected
delta is walked (truncated at the first failure, mirroring the serial
stop-on-failure path), and the raw outcomes go back to the parent.  No
artifact-cache state crosses requests in a worker — step elimination is
applied exactly once, deterministically, when the parent replays the
response through its own :class:`~repro.buildsys.cache.ArtifactCache` in
selection order.  What workers *do* keep between requests is pure,
outcome-neutral CPU state: memoized :class:`BuildContext` roots per base
head and derived speculation-prefix contexts, the same O(delta)
machinery the serial controller uses (contexts are value holders; step
results are functions of the merged snapshot alone, so cache warmth can
never change an outcome — only how fast it is computed).

``step_wall_seconds`` models the real wall cost of one hermetic step
(the compile/test subprocess a production CI worker would spawn) as a
sleep.  Sleeps release the GIL and overlap perfectly across processes,
which is what the throughput benchmark measures.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Dict, FrozenSet, List, Tuple

from repro.buildsys.executor import BuildContext
from repro.buildsys.steps import evaluate_step
from repro.errors import PatchConflictError
from repro.parallel.payload import BuildRequest, BuildResponse, StepRecord, WorkerSpan
from repro.types import CommitId

#: Memoized root contexts per base head (mirrors the serial controller's
#: ``BASE_CONTEXT_CAPACITY``).
_BASE_CAPACITY = 4
#: Memoized speculation-prefix contexts, keyed ``(base, frozenset(ids))``.
_PREFIX_CAPACITY = 128

_base_contexts: "OrderedDict[CommitId, BuildContext]" = OrderedDict()
_prefix_contexts: "OrderedDict[Tuple[CommitId, FrozenSet[str]], BuildContext]" = (
    OrderedDict()
)


def reset_worker_state() -> None:
    """Drop all memoized contexts (test isolation; never required)."""
    _base_contexts.clear()
    _prefix_contexts.clear()


def _remember(cache: OrderedDict, key, value, capacity: int) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > capacity:
        cache.popitem(last=False)


def _base_context(request: BuildRequest) -> BuildContext:
    context = _base_contexts.get(request.base_commit_id)
    if context is None:
        context = BuildContext.load(request.base_snapshot)
        _remember(_base_contexts, request.base_commit_id, context, _BASE_CAPACITY)
    else:
        _base_contexts.move_to_end(request.base_commit_id)
    return context


def _merged_context(request: BuildRequest, base: BuildContext) -> BuildContext:
    """Fold the assumed patches, then the change's own patch, onto the base.

    Fold order matches the serial controller's ``_prefix_context``:
    ``request.assumed`` arrives pre-sorted by change id, and every
    intermediate prefix is memoized so sibling and child speculations in
    later requests resume from it.  Raises
    :class:`~repro.errors.PatchConflictError` exactly where the serial
    merge would.
    """
    head = request.base_commit_id
    ids = [cid for cid, _ in request.assumed]
    context = base
    start = 0
    for length in range(len(ids), 0, -1):
        cached = _prefix_contexts.get((head, frozenset(ids[:length])))
        if cached is not None:
            _prefix_contexts.move_to_end((head, frozenset(ids[:length])))
            context, start = cached, length
            break
    for position in range(start, len(ids)):
        patch = request.assumed[position][1]
        context = context.derive(patch.apply(context.snapshot), patch.paths)
        _remember(
            _prefix_contexts,
            (head, frozenset(ids[: position + 1])),
            context,
            _PREFIX_CAPACITY,
        )
    stack = (head, frozenset(ids) | {request.change_id})
    merged = _prefix_contexts.get(stack)
    if merged is None:
        merged = context.derive(
            request.patch.apply(context.snapshot), request.patch.paths
        )
        _remember(_prefix_contexts, stack, merged, _PREFIX_CAPACITY)
    else:
        _prefix_contexts.move_to_end(stack)
    return merged


def execute_request(request: BuildRequest) -> BuildResponse:
    """Run one speculative build hermetically; never raises.

    Any exception other than a merge conflict is returned as
    ``BuildResponse.error`` so the parent can fail with context instead
    of a half-unpicklable traceback from the pool.
    """
    started = time.perf_counter()
    wall_started = time.time()
    tracing = bool(request.trace_id)
    spans: List[WorkerSpan] = []

    def _span(name: str, kind: str, begin: float, target: str = "", step: str = "") -> None:
        if tracing:
            end = time.perf_counter() - started
            spans.append(
                WorkerSpan(
                    name=name,
                    kind=kind,
                    wall_offset=begin,
                    wall_duration=max(0.0, end - begin),
                    target=target,
                    step=step,
                )
            )

    try:
        merge_begin = time.perf_counter() - started
        base = _base_context(request)
        try:
            merged = _merged_context(request, base)
        except PatchConflictError as exc:
            _span("merge", "merge", merge_begin)
            return BuildResponse(
                build_id=request.build_id,
                change_id=request.change_id,
                merge_conflict=str(exc),
                wall_seconds=time.perf_counter() - started,
                worker_pid=os.getpid(),
                wall_started=wall_started if tracing else 0.0,
                step_spans=tuple(spans),
            )
        _span("merge", "merge", merge_begin)
        order = merged.affected_against(base)
        targets: List[str] = []
        steps: List[StepRecord] = []
        failed = False
        for name in order:
            target = merged.graph.target(name)
            digest = merged.hashes[name]
            targets.append(name)
            for kind in target.steps:
                step_begin = time.perf_counter() - started
                result = evaluate_step(merged.graph, target, kind, merged.snapshot)
                steps.append(
                    StepRecord(
                        target=name,
                        kind=kind,
                        digest=digest,
                        passed=result.passed,
                        log=result.log,
                    )
                )
                # Pay the synthetic wall cost per step (same total as the
                # old bulk sleep: step_wall_seconds * len(steps)) so each
                # recorded span covers its own step's wall time.
                if request.step_wall_seconds > 0.0:
                    time.sleep(request.step_wall_seconds)
                _span(f"{name}:{kind.value}", "step", step_begin, name, kind.value)
                if not result.passed:
                    failed = True
                    break
            if failed:
                break
        return BuildResponse(
            build_id=request.build_id,
            change_id=request.change_id,
            targets=tuple(targets),
            steps=tuple(steps),
            wall_seconds=time.perf_counter() - started,
            worker_pid=os.getpid(),
            wall_started=wall_started if tracing else 0.0,
            step_spans=tuple(spans),
        )
    except Exception as exc:  # pragma: no cover - defensive: crash as data
        return BuildResponse(
            build_id=request.build_id,
            change_id=request.change_id,
            wall_seconds=time.perf_counter() - started,
            worker_pid=os.getpid(),
            error=f"{type(exc).__name__}: {exc}",
        )
