"""Picklable build-request/response payloads for process dispatch.

A :class:`BuildRequest` carries everything a worker process needs to
execute one speculative build hermetically: the base head (and its
snapshot, so an anonymous pool worker that has never seen that head can
root a :class:`~repro.buildsys.executor.BuildContext` for it), the
assumed stack's patches in merge order, and the subject change's patch.
A :class:`BuildResponse` carries the *raw* step outcomes back — target,
step kind, Algorithm-1 digest, pass/fail, log — deliberately without any
cache provenance: whether a step counts as executed or eliminated is
decided by the parent when it replays the response through its own
:class:`~repro.buildsys.cache.ArtifactCache` in selection order, which is
what keeps parallel execution bit-identical to the serial oracle.

Everything here must survive ``pickle`` round-trips with no loss: only
plain data, frozen dataclasses, and the already-picklable
:class:`~repro.vcs.patch.Patch` value objects — never lambdas, bound
methods, or closures (see ``tests/test_parallel_pickle.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.types import ChangeId, CommitId, Path, StepKind, TargetName
from repro.vcs.patch import Patch


@dataclass(frozen=True)
class BuildRequest:
    """One speculative build, serialized for a worker process.

    ``build_id`` correlates the response inside one batch; ``assumed``
    lists the speculated-on changes' patches in merge order (sorted
    change id, matching the serial controller).  ``step_wall_seconds``
    models the real wall-clock cost of one executed build step (the
    compile/test subprocess a production worker would actually run);
    zero — the default — makes execution purely synthetic.

    ``trace_id`` and ``parent_span_id`` carry the parent's trace context
    across the process boundary: a non-empty ``trace_id`` asks the
    worker to capture per-step wall-clock spans and ship them back in
    ``BuildResponse.step_spans``; the parent splices them under span
    ``parent_span_id`` at resolution.  Empty (the default) keeps the
    worker's fast path span-free.

    ``batch_members`` names the changes riding in this build when it is a
    risk-aware speculative batch (submission order; empty for ordinary
    builds).  Metadata only: workers never branch on it, so outcomes are
    bit-identical whether or not it is set — it exists so worker-side
    logs and observability can attribute a build to its batch.
    """

    build_id: int
    change_id: ChangeId
    base_commit_id: CommitId
    base_snapshot: Dict[Path, str]
    assumed: Tuple[Tuple[ChangeId, Patch], ...]
    patch: Patch
    step_wall_seconds: float = 0.0
    trace_id: str = ""
    parent_span_id: int = 0
    batch_members: Tuple[ChangeId, ...] = ()

    def label(self) -> str:
        parts = [cid for cid, _ in self.assumed] + [self.change_id]
        return "B[" + ".".join(parts) + "]"


@dataclass(frozen=True)
class StepRecord:
    """One raw step outcome: identity, digest, verdict — no provenance."""

    target: TargetName
    kind: StepKind
    digest: str
    passed: bool
    log: str = ""


@dataclass(frozen=True)
class WorkerSpan:
    """One wall-clock span a worker captured while executing a request.

    Offsets are seconds relative to the request's ``wall_started`` epoch
    timestamp, so the parent can place the span on a shared wall-clock
    timeline (and map it into simulated time proportionally).  ``kind``
    is the span flavour (``"merge"``, ``"step"``); ``target`` and
    ``step`` identify the build step for ``"step"`` spans and stay empty
    otherwise.
    """

    name: str
    kind: str
    wall_offset: float
    wall_duration: float
    target: TargetName = ""
    step: str = ""


@dataclass(frozen=True)
class BuildResponse:
    """What a worker did for one request.

    ``targets`` and ``steps`` preserve the build order (steps grouped by
    target, truncated at the first failure exactly as the serial
    stop-on-failure path truncates).  ``wall_seconds`` is the worker-side
    wall clock for the whole request — context derivation, step
    evaluation, and the synthetic per-step wall cost.  ``error`` carries
    a worker-side crash as data so the parent can fail loudly with
    context instead of unpickling a traceback.

    ``wall_started`` (epoch seconds) plus ``step_spans`` reconstruct the
    worker-side timeline when the request carried a ``trace_id``; both
    stay empty on untraced requests so the payload cost is zero.
    """

    build_id: int
    change_id: ChangeId
    targets: Tuple[TargetName, ...] = ()
    steps: Tuple[StepRecord, ...] = ()
    merge_conflict: Optional[str] = None
    wall_seconds: float = 0.0
    worker_pid: int = 0
    error: Optional[str] = None
    wall_started: float = 0.0
    step_spans: Tuple[WorkerSpan, ...] = ()
