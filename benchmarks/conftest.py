"""Shared benchmark plumbing.

Each benchmark module reproduces one paper figure: it runs the experiment
(sized to finish on a laptop), prints the same rows/series the paper
plots via :func:`emit`, asserts the *shape* invariants (who wins, by
roughly what factor, monotonicity), and times a representative kernel
with pytest-benchmark.

Every emitted table is also written to ``benchmarks/results/<name>.txt``
so EXPERIMENTS.md can reference the latest run.
"""

from __future__ import annotations

import json
import pathlib
import platform

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Tables emitted during this session, replayed in the terminal summary
#: (pytest captures ordinary prints; the summary is always visible).
_EMITTED = []

#: Machine-readable conflict-analysis datapoints recorded this session,
#: written to ``benchmarks/results/BENCH_conflict.json`` at session end so
#: the incremental-path perf trajectory is tracked across commits.
_CONFLICT_BENCH: dict = {}

#: Planner-throughput datapoints (warm vs cold plan() latency, epochs/sec
#: at several queue depths), written to ``BENCH_planner.json``.
_PLANNER_BENCH: dict = {}

#: Executor-throughput datapoints (warm vs cold build latency, prefix-hit
#: rates, builds/sec by speculation depth, and the figure-12-style
#: end-to-end cell), written to ``BENCH_exec.json``.
_EXEC_BENCH: dict = {}

#: Parallel-backend datapoints (wall-clock build-phase speedup of the
#: process pool over the serial local backend on the figure-12 cell),
#: written to ``BENCH_parallel.json``.
_PARALLEL_BENCH: dict = {}

#: Risk-batching datapoints (changes/hour with and without speculative
#: batching across a worker sweep at the figure-12 high-load rate),
#: written to ``BENCH_batch.json``.
_BATCH_BENCH: dict = {}

#: Sharded-queue datapoints (warm per-change analyze+sweep latency of the
#: partition-sharded analyzer vs the monolithic one at deep pending
#: depths, plus the service-path fingerprint smoke), written to
#: ``BENCH_shard.json``.
_SHARD_BENCH: dict = {}


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{text}\n{'=' * 72}"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _EMITTED.append(text)


def record_conflict_bench(key: str, payload: dict) -> None:
    """Record one conflict-benchmark datapoint for BENCH_conflict.json."""
    _CONFLICT_BENCH[key] = payload


def record_planner_bench(key: str, payload: dict) -> None:
    """Record one planner-throughput datapoint for BENCH_planner.json."""
    _PLANNER_BENCH[key] = payload


def record_exec_bench(key: str, payload: dict) -> None:
    """Record one executor-throughput datapoint for BENCH_exec.json."""
    _EXEC_BENCH[key] = payload


def record_parallel_bench(key: str, payload: dict) -> None:
    """Record one parallel-speedup datapoint for BENCH_parallel.json."""
    _PARALLEL_BENCH[key] = payload


def record_batch_bench(key: str, payload: dict) -> None:
    """Record one risk-batching datapoint for BENCH_batch.json."""
    _BATCH_BENCH[key] = payload


def record_shard_bench(key: str, payload: dict) -> None:
    """Record one sharded-queue datapoint for BENCH_shard.json."""
    _SHARD_BENCH[key] = payload


def _write_bench_json(filename: str, kernels: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    document = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kernels": kernels,
    }
    (RESULTS_DIR / filename).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


def pytest_sessionfinish(session, exitstatus):
    if _CONFLICT_BENCH:
        _write_bench_json("BENCH_conflict.json", _CONFLICT_BENCH)
    if _PLANNER_BENCH:
        _write_bench_json("BENCH_planner.json", _PLANNER_BENCH)
    if _EXEC_BENCH:
        _write_bench_json("BENCH_exec.json", _EXEC_BENCH)
    if _PARALLEL_BENCH:
        _write_bench_json("BENCH_parallel.json", _PARALLEL_BENCH)
    if _BATCH_BENCH:
        _write_bench_json("BENCH_batch.json", _BATCH_BENCH)
    if _SHARD_BENCH:
        _write_bench_json("BENCH_shard.json", _SHARD_BENCH)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _EMITTED:
        return
    terminalreporter.section("paper figure reproductions (paper vs measured)")
    for text in _EMITTED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def trained_predictor():
    """A learned predictor trained once per benchmark session (section 7.2)."""
    from dataclasses import replace

    from repro.predictor.training import train_models
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.scenarios import IOS_WORKLOAD

    generator = WorkloadGenerator(replace(IOS_WORKLOAD, seed=4321))
    history = generator.history(4000)
    predictor, report = train_models(history, seed=11)
    return predictor, report
