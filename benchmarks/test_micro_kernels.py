"""Microbenchmarks of the hot kernels (section 7.1's scalability story).

These time the pieces that must stay cheap for SubmitQueue to scale to
hundreds of pending changes: Algorithm-1 hashing, union-graph conflict
checks, lazy speculation enumeration, engine selection, and conflict-graph
maintenance.
"""

import pytest

from repro.buildsys.hashing import TargetHasher
from repro.buildsys.loader import load_build_graph
from repro.speculation.tree import SubsetEnumerator
from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo


@pytest.fixture(scope="module")
def big_monorepo():
    return SyntheticMonorepo(MonorepoSpec(layers=(8, 16, 32, 32), fan_in=3), seed=1)


def test_benchmark_target_hashing(benchmark, big_monorepo):
    snapshot = big_monorepo.repo.snapshot().to_dict()
    graph = load_build_graph(snapshot)

    def hash_everything():
        return len(TargetHasher(graph, snapshot).all_hashes())

    count = benchmark(hash_everything)
    assert count == len(graph)


def test_benchmark_build_graph_load(benchmark, big_monorepo):
    snapshot = big_monorepo.repo.snapshot().to_dict()
    graph = benchmark(load_build_graph, snapshot)
    assert len(graph) == 8 + 16 + 32 + 32


def test_benchmark_union_graph_conflict(benchmark, big_monorepo):
    from repro.conflict.analyzer import ConflictAnalyzer

    snapshot = big_monorepo.repo.snapshot().to_dict()
    structural = big_monorepo.make_structural_change()
    content = big_monorepo.make_clean_change()

    def slow_path_check():
        analyzer = ConflictAnalyzer(snapshot)
        return analyzer.conflict(structural, content)

    benchmark(slow_path_check)


def test_benchmark_subset_enumeration_top_100(benchmark):
    ancestors = [f"a{i}" for i in range(200)]
    probabilities = {a: 0.9 if i % 3 else 0.4 for i, a in enumerate(ancestors)}

    def top_100():
        enumerator = SubsetEnumerator("x", ancestors, probabilities)
        return [next(enumerator) for _ in range(100)]

    nodes = benchmark(top_100)
    values = [n.p_needed for n in nodes]
    assert values == sorted(values, reverse=True)


def test_benchmark_engine_selection_500_budget(benchmark):
    from repro.changes.truth import potential_conflict
    from repro.experiments.runner import make_stream
    from repro.conflict.conflict_graph import ConflictGraph
    from repro.predictor.predictors import StaticPredictor
    from repro.speculation.engine import SpeculationEngine

    stream = make_stream(500, 300, seed=123)
    graph = ConflictGraph(potential_conflict)
    changes = [change for _, change in stream]
    for change in changes:
        graph.add(change)
    ancestors = {c.change_id: graph.ancestors(c.change_id) for c in changes}
    engine = SpeculationEngine(StaticPredictor(success=0.9, conflict=0.05))
    changes_by_id = {c.change_id: c for c in changes}

    def select():
        return engine.select_builds(
            pending=changes,
            ancestors=ancestors,
            records={},
            decided={},
            budget=500,
            changes_by_id=changes_by_id,
        )

    selected = benchmark(select)
    assert len(selected) == 500


def test_benchmark_conflict_graph_insertion(benchmark):
    from repro.changes.truth import potential_conflict
    from repro.conflict.conflict_graph import ConflictGraph
    from repro.experiments.runner import make_stream

    changes = [change for _, change in make_stream(500, 200, seed=321)]

    def build_graph():
        graph = ConflictGraph(potential_conflict)
        for change in changes:
            graph.add(change)
        return graph.edge_count()

    benchmark(build_graph)
