"""Microbenchmarks of the hot kernels (section 7.1's scalability story).

These time the pieces that must stay cheap for SubmitQueue to scale to
hundreds of pending changes: Algorithm-1 hashing (cold and dirty-set
incremental), per-change conflict analysis (cold and carried-over),
union-graph conflict checks, lazy speculation enumeration, engine
selection, and conflict-graph maintenance.  The warm-vs-cold pairs also
record machine-readable datapoints into ``BENCH_conflict.json``.
"""

import time

import pytest

from benchmarks.conftest import record_conflict_bench
from repro.buildsys.hashing import TargetHasher, incremental_hashes
from repro.buildsys.loader import load_build_graph
from repro.conflict.analyzer import ConflictAnalyzer
from repro.speculation.tree import SubsetEnumerator
from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo


@pytest.fixture(scope="module")
def big_monorepo():
    return SyntheticMonorepo(MonorepoSpec(layers=(8, 16, 32, 32), fan_in=3), seed=1)


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn`` in seconds (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_benchmark_target_hashing(benchmark, big_monorepo):
    snapshot = big_monorepo.repo.snapshot().to_dict()
    graph = load_build_graph(snapshot)

    def hash_everything():
        return len(TargetHasher(graph, snapshot).all_hashes())

    count = benchmark(hash_everything)
    assert count == len(graph)


def test_benchmark_build_graph_load(benchmark, big_monorepo):
    snapshot = big_monorepo.repo.snapshot().to_dict()
    graph = benchmark(load_build_graph, snapshot)
    assert len(graph) == 8 + 16 + 32 + 32


def test_benchmark_union_graph_conflict(benchmark, big_monorepo):
    from repro.conflict.analyzer import ConflictAnalyzer

    snapshot = big_monorepo.repo.snapshot().to_dict()
    structural = big_monorepo.make_structural_change()
    content = big_monorepo.make_clean_change()

    def slow_path_check():
        analyzer = ConflictAnalyzer(snapshot)
        return analyzer.conflict(structural, content)

    benchmark(slow_path_check)


def test_benchmark_analyzer_analyze_cold(benchmark, big_monorepo):
    """From-scratch path: build an analyzer, then analyze one small change."""
    snapshot = big_monorepo.repo.snapshot().to_dict()
    change = big_monorepo.make_clean_change(
        target_name=big_monorepo.target_names(layer=2)[0]
    )

    def cold_analyze():
        return ConflictAnalyzer(snapshot).analyze(change)

    analysis = benchmark(cold_analyze)
    assert analysis.delta


def test_benchmark_analyzer_analyze_warm(benchmark, big_monorepo):
    """Carried-over path: an existing analyzer analyzes one small change."""
    snapshot = big_monorepo.repo.snapshot().to_dict()
    change = big_monorepo.make_clean_change(
        target_name=big_monorepo.target_names(layer=2)[0]
    )
    analyzer = ConflictAnalyzer(snapshot)

    def warm_analyze():
        analyzer.forget(change.change_id)
        return analyzer.analyze(change)

    analysis = benchmark(warm_analyze)
    assert analysis.delta


def test_analyzer_warm_speedup_vs_cold(big_monorepo, request):
    """Acceptance: analyzer reuse beats from-scratch analysis by >= 5x."""
    snapshot = big_monorepo.repo.snapshot().to_dict()
    change = big_monorepo.make_clean_change(
        target_name=big_monorepo.target_names(layer=2)[1]
    )
    analyzer = ConflictAnalyzer(snapshot)

    def warm_analyze():
        analyzer.forget(change.change_id)
        analyzer.analyze(change)

    def cold_analyze():
        ConflictAnalyzer(snapshot).analyze(change)

    warm = _best_of(warm_analyze, 10)
    cold = _best_of(cold_analyze, 3)
    speedup = cold / warm if warm else float("inf")
    record_conflict_bench(
        "analyzer_warm_vs_cold",
        {
            "monorepo_layers": [8, 16, 32, 32],
            "cold_seconds": cold,
            "warm_seconds": warm,
            "speedup": speedup,
        },
    )
    if not request.config.getoption("--benchmark-disable"):
        assert speedup >= 5.0, f"warm analysis only {speedup:.1f}x faster than cold"


def test_incremental_rehash_after_one_file_edit(big_monorepo, request):
    """Dirty-set hashing after a 1-file edit vs. rehashing the whole graph."""
    snapshot = big_monorepo.repo.snapshot().to_dict()
    graph = load_build_graph(snapshot)
    base_hashes = TargetHasher(graph, snapshot).all_hashes()
    target = big_monorepo.target_names(layer=2)[2]
    path = big_monorepo.source_of(target)
    edited = dict(snapshot)
    edited[path] = edited[path] + "# edit\n"

    hashes, closure, computed = incremental_hashes(
        graph, base_hashes, graph, edited, [path]
    )
    assert hashes == TargetHasher(graph, edited).all_hashes()
    assert computed == len(closure) < len(graph)

    def full_rehash():
        TargetHasher(graph, edited).all_hashes()

    def incremental_rehash():
        incremental_hashes(graph, base_hashes, graph, edited, [path])

    full = _best_of(full_rehash, 3)
    incremental = _best_of(incremental_rehash, 10)
    speedup = full / incremental if incremental else float("inf")
    record_conflict_bench(
        "rehash_one_file_edit",
        {
            "targets_total": len(graph),
            "targets_rehashed": computed,
            "full_seconds": full,
            "incremental_seconds": incremental,
            "speedup": speedup,
        },
    )
    if not request.config.getoption("--benchmark-disable"):
        assert speedup >= 5.0, f"incremental rehash only {speedup:.1f}x faster"


def test_benchmark_incremental_rehash(benchmark, big_monorepo):
    snapshot = big_monorepo.repo.snapshot().to_dict()
    graph = load_build_graph(snapshot)
    base_hashes = TargetHasher(graph, snapshot).all_hashes()
    target = big_monorepo.target_names(layer=2)[3]
    path = big_monorepo.source_of(target)
    edited = dict(snapshot)
    edited[path] = edited[path] + "# edit\n"

    def incremental_rehash():
        return incremental_hashes(graph, base_hashes, graph, edited, [path])[2]

    computed = benchmark(incremental_rehash)
    assert 0 < computed < len(graph)


def test_benchmark_subset_enumeration_top_100(benchmark):
    ancestors = [f"a{i}" for i in range(200)]
    probabilities = {a: 0.9 if i % 3 else 0.4 for i, a in enumerate(ancestors)}

    def top_100():
        enumerator = SubsetEnumerator("x", ancestors, probabilities)
        return [next(enumerator) for _ in range(100)]

    nodes = benchmark(top_100)
    values = [n.p_needed for n in nodes]
    assert values == sorted(values, reverse=True)


def test_benchmark_engine_selection_500_budget(benchmark):
    from repro.changes.truth import potential_conflict
    from repro.experiments.runner import make_stream
    from repro.conflict.conflict_graph import ConflictGraph
    from repro.predictor.predictors import StaticPredictor
    from repro.speculation.engine import SpeculationEngine

    stream = make_stream(500, 300, seed=123)
    graph = ConflictGraph(potential_conflict)
    changes = [change for _, change in stream]
    for change in changes:
        graph.add(change)
    ancestors = {c.change_id: graph.ancestors(c.change_id) for c in changes}
    engine = SpeculationEngine(StaticPredictor(success=0.9, conflict=0.05))
    changes_by_id = {c.change_id: c for c in changes}

    def select():
        # Keep this a *cold* kernel: the engine now answers repeated
        # identical rounds from its carry-over, which would turn the
        # benchmark into a fingerprint-comparison measurement.
        engine.invalidate_carry_over()
        return engine.select_builds(
            pending=changes,
            ancestors=ancestors,
            records={},
            decided={},
            budget=500,
            changes_by_id=changes_by_id,
        )

    selected = benchmark(select)
    assert len(selected) == 500


def test_benchmark_conflict_graph_insertion(benchmark):
    from repro.changes.truth import potential_conflict
    from repro.conflict.conflict_graph import ConflictGraph
    from repro.experiments.runner import make_stream

    changes = [change for _, change in make_stream(500, 200, seed=321)]

    def build_graph():
        graph = ConflictGraph(potential_conflict)
        for change in changes:
            graph.add(change)
        return graph.edge_count()

    benchmark(build_graph)
