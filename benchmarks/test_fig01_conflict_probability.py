"""Figure 1: probability of real conflicts vs. concurrency.

Paper: ~5 % at 2 concurrent potentially-conflicting changes, rising to
~40 % at 16, for both iOS and Android.  Shape checks: the curve is
(noise-tolerantly) increasing, small at n=2, and in the tens of percent
by n=16.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import figure01


@pytest.fixture(scope="module")
def result():
    outcome = figure01.run(concurrency=(2, 4, 8, 12, 16), groups=200, pool_size=1000)
    emit("fig01_conflict_probability", figure01.format_result(outcome))
    return outcome


def test_reproduces_figure1_shape(result):
    for platform in ("iOS", "Android"):
        series = result.series(platform)
        assert series[0] < 0.12, "n=2 should be rare"
        assert series[-1] > 0.15, "n=16 should be substantial"
        assert series[-1] > series[0] * 2, "growth with concurrency"
        # Tolerate Monte-Carlo noise: each point within 0.12 of a
        # monotone envelope.
        running_max = 0.0
        for value in series:
            assert value >= running_max - 0.12
            running_max = max(running_max, value)


def test_benchmark_conflict_sampling(benchmark, result):
    benchmark(
        figure01.run, concurrency=(2, 8), groups=40, pool_size=300, seed=7
    )
