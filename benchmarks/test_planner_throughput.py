"""Planner throughput: warm (fingerprint-skip) vs cold plan() epochs.

The incremental planner answers a no-input-change epoch from its plan
fingerprint without touching the strategy, and answers a one-change
perturbation from the dirty-set sweep plus enumerator carry-over.  These
benchmarks measure both against the from-scratch path at several queue
depths and record the datapoints into ``BENCH_planner.json`` (the planner
counterpart of ``BENCH_conflict.json``).
"""

import time

import pytest

from benchmarks.conftest import record_planner_bench
from repro.changes.state import ChangeRecord
from repro.changes.truth import potential_conflict
from repro.conflict.conflict_graph import ConflictGraph
from repro.experiments.runner import make_stream
from repro.planner.controller import LabelBuildController
from repro.planner.planner import PlannerEngine
from repro.planner.workers import WorkerPool
from repro.predictor.predictors import StaticPredictor
from repro.speculation.engine import SpeculationEngine
from repro.strategies.submitqueue import SubmitQueueStrategy

QUEUE_DEPTHS = (16, 64, 256)
WORKERS = 32


def _per_call(fn, calls: int, repeats: int) -> float:
    """Best-of-N mean seconds per call (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - start) / calls)
    return best


def _make_planner(depth: int, seed: int = 29) -> PlannerEngine:
    planner = PlannerEngine(
        strategy=SubmitQueueStrategy(StaticPredictor(success=0.9, conflict=0.05)),
        controller=LabelBuildController(),
        workers=WorkerPool(WORKERS),
        conflict_predicate=potential_conflict,
    )
    for minute, change in make_stream(500, depth, seed=seed):
        planner.submit(change, minute)
    # Prime: fills the worker pool and snapshots the epoch fingerprint.
    planner.plan(0.0)
    return planner


@pytest.mark.parametrize("depth", QUEUE_DEPTHS)
def test_plan_warm_vs_cold(depth, request):
    """Acceptance: warm plan() >= 10x faster than cold at depth >= 64."""
    planner = _make_planner(depth)
    skipped_before = planner.stats.plan_calls_skipped

    def warm_plan():
        planner.plan(0.0)

    def cold_plan():
        planner.invalidate_plan_cache()
        planner.plan(0.0)

    warm = _per_call(warm_plan, calls=50, repeats=5)
    assert planner.stats.plan_calls_skipped > skipped_before

    cold = _per_call(cold_plan, calls=1, repeats=5)
    speedup = cold / warm if warm else float("inf")
    record_planner_bench(
        f"plan_depth_{depth}",
        {
            "queue_depth": depth,
            "workers": WORKERS,
            "cold_plan_seconds": cold,
            "warm_plan_seconds": warm,
            "cold_epochs_per_sec": 1.0 / cold if cold else float("inf"),
            "warm_epochs_per_sec": 1.0 / warm if warm else float("inf"),
            "speedup": speedup,
        },
    )
    if depth >= 64 and not request.config.getoption("--benchmark-disable"):
        assert speedup >= 10.0, f"warm plan only {speedup:.1f}x faster than cold"


def test_engine_dirty_one_change(request):
    """One counter bump: dirty-cone resweep + enumerator reuse vs cold."""
    depth = 256
    changes = [change for _, change in make_stream(500, depth, seed=31)]
    graph = ConflictGraph(potential_conflict)
    for change in changes:
        graph.add(change)
    ancestors = {c.change_id: graph.ancestors(c.change_id) for c in changes}
    records = {c.change_id: ChangeRecord(change=c) for c in changes}
    changes_by_id = {c.change_id: c for c in changes}
    engine = SpeculationEngine(StaticPredictor(success=0.9, conflict=0.05))

    def select():
        return engine.select_builds(
            pending=changes,
            ancestors=ancestors,
            records=records,
            decided={},
            budget=WORKERS,
            changes_by_id=changes_by_id,
        )

    select()  # prime the carry-over
    victim = records[changes[0].change_id]

    def dirty_select():
        victim.speculations_succeeded += 1
        select()

    def cold_select():
        engine.invalidate_carry_over()
        select()

    incremental = _per_call(dirty_select, calls=20, repeats=3)
    reused = engine.stats.commit_prob_reused
    recomputed = engine.stats.commit_prob_recomputed
    cold = _per_call(cold_select, calls=1, repeats=3)
    speedup = cold / incremental if incremental else float("inf")
    record_planner_bench(
        "engine_dirty_one_change",
        {
            "queue_depth": depth,
            "budget": WORKERS,
            "cold_select_seconds": cold,
            "incremental_select_seconds": incremental,
            "speedup": speedup,
            "commit_prob_reuse_rate": (
                reused / (reused + recomputed) if reused + recomputed else 0.0
            ),
        },
    )
    if not request.config.getoption("--benchmark-disable"):
        assert speedup >= 1.5, f"dirty-set replan only {speedup:.1f}x faster"


def test_benchmark_warm_plan_depth_64(benchmark):
    """pytest-benchmark kernel: the fingerprint-skip epoch itself."""
    planner = _make_planner(64)
    benchmark(planner.plan, 0.0)
    assert planner.stats.plan_calls_skipped > 0
