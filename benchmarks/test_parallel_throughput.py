"""Parallel-backend throughput: wall-clock build-phase speedup.

Drives the figure-12 cell (``repro.parallel.workload``) once per
backend — serial ``local``, ``process:2``, ``process:4`` — with a real
per-step wall cost (each executed step sleeps ``step_wall_seconds``,
modelling the compile/test subprocess it stands in for).  The process
backend overlaps those sleeps across worker processes; the serial
backend cannot.  Acceptance: >= 2.5x speedup at 4 workers with
*bit-identical* decisions and state fingerprints, which is what makes
the comparison honest — the parallel run does exactly the same builds,
in the same canonical order, and lands the same commits.

A small two-worker smoke variant runs in CI (fast, fingerprint-checked,
no speedup floor — shared runners have unpredictable core budgets);
every datapoint lands in ``benchmarks/results/BENCH_parallel.json``.
"""

import os

import pytest

from benchmarks.conftest import emit, record_parallel_bench
from repro.experiments.runner import format_table
from repro.parallel.workload import mint_cell, run_cell
from repro.workload.repo_synth import MonorepoSpec

#: Per-step simulated subprocess cost for the full cell (seconds).
STEP_WALL = 0.01
#: The acceptance floor: process:4 over serial local on the full cell.
SPEEDUP_FLOOR = 2.5

_SMOKE_ONLY = os.environ.get("PARALLEL_BENCH_SMOKE") == "1"


def _table(results):
    serial = results[0].wall_seconds
    rows = [
        (
            r.backend,
            f"{r.wall_seconds:.2f}s",
            f"{serial / r.wall_seconds:.2f}x",
            r.builds_started,
            r.steps_executed,
            r.committed,
            r.fingerprint[:12],
        )
        for r in results
    ]
    return format_table(
        ("backend", "wall", "speedup", "builds", "steps", "landed", "fingerprint"),
        rows,
        title="parallel build-phase throughput (identical decisions per row)",
    )


def _record(name, results):
    serial = results[0].wall_seconds
    for r in results:
        record_parallel_bench(
            f"{name}_{r.backend.replace(':', '_')}",
            {
                "backend": r.backend,
                "wall_seconds": round(r.wall_seconds, 4),
                "speedup_vs_serial": round(serial / r.wall_seconds, 3),
                "builds_started": r.builds_started,
                "steps_executed": r.steps_executed,
                "committed": r.committed,
                "fingerprint": r.fingerprint,
            },
        )


@pytest.mark.skipif(
    _SMOKE_ONLY, reason="PARALLEL_BENCH_SMOKE=1 runs only the smoke cell"
)
def test_parallel_throughput_figure12():
    """Acceptance: >= 2.5x at 4 workers, same decisions, same fingerprint."""
    files, changes = mint_cell(seed=23, count=16)
    results = [
        run_cell(files, changes, backend=backend, parallel_workers=workers,
                 step_wall_seconds=STEP_WALL)
        for backend, workers in (("local", None), ("process", 2), ("process", 4))
    ]
    emit("parallel_throughput", _table(results))
    _record("figure12", results)

    serial = results[0]
    for parallel in results[1:]:
        assert parallel.fingerprint == serial.fingerprint, parallel.backend
        assert parallel.decisions == serial.decisions, parallel.backend
    assert serial.committed == len(changes)  # all clean changes land

    speedup = serial.wall_seconds / results[-1].wall_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        f"process:4 speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )


def test_parallel_throughput_smoke():
    """CI cell: 2 workers, small repo — fingerprint equality is the gate."""
    files, changes = mint_cell(
        seed=7, count=6, spec=MonorepoSpec(layers=(3, 4, 3), fan_in=2)
    )
    results = [
        run_cell(files, changes, backend=backend, parallel_workers=workers,
                 service_workers=4, step_wall_seconds=0.005)
        for backend, workers in (("local", None), ("process", 2))
    ]
    emit("parallel_throughput_smoke", _table(results))
    _record("smoke", results)
    assert results[1].fingerprint == results[0].fingerprint
    assert results[1].decisions == results[0].decisions
    assert results[0].committed == len(changes)
