"""Risk-aware batching throughput: changes/hour at the figure-12 high-load rate.

Drives the figure-12 simulation cell (500 changes/hour, the paper's
highest arrival rate) across a worker sweep, once with plain SubmitQueue
and once with :class:`~repro.strategies.risk_batch.RiskBatchStrategy` on
the same pre-generated stream.  At low worker counts the pool saturates
and plain SubmitQueue flat-lines (one speculation path per change — the
Figure 12 ceiling); risk batches pack jointly-low-risk changes into one
build and land them together, so the same pool decides more changes per
hour.  Acceptance at the high-load cell (fewest workers): >= 1.5x
changes/hour, the *same* commit set, and zero red commits — every landed
change must keep the mainline green when replayed over the ground truth,
which is what separates this from Chromium-style shippable-batch modes.

A service-path smoke variant always runs (and is the CI gate): a
``CoreService`` cell with batching *disabled* must produce a state
fingerprint bit-identical to plain SubmitQueue, pinning the
batching-off = seed-behavior guarantee; every datapoint lands in
``benchmarks/results/BENCH_batch.json``.
"""

import os

import pytest

from benchmarks.conftest import emit, record_batch_bench
from repro.changes.truth import build_outcome, potential_conflict
from repro.experiments.runner import format_table, make_stream, run_cell
from repro.parallel import workload
from repro.predictor.predictors import OraclePredictor
from repro.strategies.risk_batch import RiskBatchStrategy
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.workload.repo_synth import MonorepoSpec

#: The figure-12 high-load arrival rate (changes per hour).
HIGH_LOAD_RATE = 500
#: Stream length for each sweep cell.
CELL_CHANGES = 300
#: Worker sweep: the first entry is the high-load acceptance cell.
WORKER_SWEEP = (8, 16, 32)
#: Acceptance floor at the high-load cell: batching vs plain SubmitQueue.
SPEEDUP_FLOOR = 1.5
#: Batch-formation knobs used for the curve (documented in the table).
BATCH_SIZE = 16
MIN_JOINT_SUCCESS = 0.3

_SMOKE_ONLY = os.environ.get("BATCH_BENCH_SMOKE") == "1"


def _committed_ids(result):
    return [d.change_id for d in result.decisions if d.committed]


def _red_commits(result, stream):
    """Committed changes that would have broken the mainline.

    Replays the commit sequence over the ground-truth labels: change ``c``
    is a red commit unless it is individually OK and free of real
    conflicts with every *co-pending* change committed before it — the
    per-change shippable-commit guarantee.  Label-mode ground truth only
    models conflicts between changes racing through the queue together
    (a change submitted after its partner landed was authored against a
    mainline that already contained it), so pairs that were never
    co-pending are out of scope for every strategy.
    """
    changes_by_id = {change.change_id: change for _, change in stream}
    submitted_at = {change.change_id: at for at, change in stream}
    landed = []  # (change, decided_at)
    red = []
    for decision in sorted(
        (d for d in result.decisions if d.committed), key=lambda d: d.at
    ):
        change = changes_by_id[decision.change_id]
        co_pending = [
            other
            for other, decided_at in landed
            if decided_at > submitted_at[change.change_id]
        ]
        if not build_outcome(change, co_pending):
            red.append(change.change_id)
        landed.append((change, decision.at))
    return red


def _run_pair(stream, workers):
    plain = run_cell(
        SubmitQueueStrategy(OraclePredictor()), stream, workers,
        potential_conflict,
    )
    strategy = RiskBatchStrategy(
        OraclePredictor(),
        batch_size=BATCH_SIZE,
        min_joint_success=MIN_JOINT_SUCCESS,
    )
    batched = run_cell(strategy, stream, workers, potential_conflict)
    return plain, batched, strategy.batch_stats


@pytest.mark.skipif(
    _SMOKE_ONLY, reason="BATCH_BENCH_SMOKE=1 runs only the smoke cell"
)
def test_batch_throughput_figure12_highload():
    """Acceptance: >= 1.5x changes/hour at the high-load cell, zero red."""
    stream = make_stream(HIGH_LOAD_RATE, CELL_CHANGES, seed=1212)
    rows = []
    speedups = {}
    for workers in WORKER_SWEEP:
        plain, batched, stats = _run_pair(stream, workers)
        speedup = (
            batched.throughput_per_hour / plain.throughput_per_hour
            if plain.throughput_per_hour > 0
            else 0.0
        )
        speedups[workers] = speedup

        # Real-conflict pairs land first-wins, and landing *order* differs
        # between the modes, so commit-set membership may swap within a
        # conflicting pair — but the landed count must agree and neither
        # mode may ship a red commit.
        assert abs(batched.changes_committed - plain.changes_committed) <= 2
        assert _red_commits(batched, stream) == []
        assert _red_commits(plain, stream) == []

        rows.append(
            (
                workers,
                f"{plain.throughput_per_hour:.1f}",
                f"{batched.throughput_per_hour:.1f}",
                f"{speedup:.2f}x",
                stats.batches_landed,
                stats.members_committed,
                stats.bisections,
            )
        )
        record_batch_bench(
            f"figure12_rate{HIGH_LOAD_RATE}_w{workers}",
            {
                "workers": workers,
                "rate_per_hour": HIGH_LOAD_RATE,
                "plain_changes_per_hour": round(plain.throughput_per_hour, 3),
                "batched_changes_per_hour": round(
                    batched.throughput_per_hour, 3
                ),
                "speedup": round(speedup, 3),
                "batches_landed": stats.batches_landed,
                "members_committed": stats.members_committed,
                "bisections": stats.bisections,
                "red_commits": 0,
            },
        )
    record_batch_bench(
        "figure12_highload_speedup",
        {
            "workers": WORKER_SWEEP[0],
            "rate_per_hour": HIGH_LOAD_RATE,
            "speedup": round(speedups[WORKER_SWEEP[0]], 3),
            "floor": SPEEDUP_FLOOR,
        },
    )
    emit(
        "batch_throughput",
        format_table(
            (
                "workers",
                "plain c/h",
                "batched c/h",
                "speedup",
                "batches",
                "members",
                "bisections",
            ),
            rows,
            title=(
                f"risk-aware batching @ {HIGH_LOAD_RATE} changes/h "
                f"(batch_size={BATCH_SIZE}, same landed count per row)"
            ),
        ),
    )
    high_load = speedups[WORKER_SWEEP[0]]
    assert high_load >= SPEEDUP_FLOOR, (
        f"high-load speedup {high_load:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )


def test_batch_off_fingerprint_smoke():
    """CI cell: batching disabled must be bit-identical to plain SubmitQueue."""
    files, changes = workload.mint_cell(
        seed=7, count=6, spec=MonorepoSpec(layers=(3, 4, 3), fan_in=2)
    )
    plain = workload.run_cell(files, changes, service_workers=2)
    off = _run_service_cell_batching_off(files, changes)
    on = workload.run_cell(files, changes, service_workers=2, batching=True)
    record_batch_bench(
        "smoke_fingerprint",
        {
            "plain_fingerprint": plain.fingerprint,
            "batching_off_fingerprint": off.fingerprint,
            "identical": off.fingerprint == plain.fingerprint,
            "batching_on_committed": on.committed,
        },
    )
    emit(
        "batch_throughput_smoke",
        format_table(
            ("mode", "landed", "builds", "fingerprint"),
            [
                ("plain", plain.committed, plain.builds_started,
                 plain.fingerprint[:12]),
                ("batching-off", off.committed, off.builds_started,
                 off.fingerprint[:12]),
                ("batching-on", on.committed, on.builds_started,
                 on.fingerprint[:12]),
            ],
            title="batching-off bit-identity smoke (service path)",
        ),
    )
    assert off.fingerprint == plain.fingerprint
    assert off.decisions == plain.decisions
    assert on.committed == len(changes)
    assert on.mainline_green


def _run_service_cell_batching_off(files, changes):
    """The service cell under ``RiskBatchStrategy(enabled=False)``."""
    import copy
    import time

    from repro.journal.fingerprint import fingerprint_digest
    from repro.predictor.predictors import StaticPredictor
    from repro.service.core import CoreService, CoreServiceConfig
    from repro.vcs.repository import Repository

    service = CoreService(
        Repository(dict(files)),
        RiskBatchStrategy(
            StaticPredictor(success=0.9, conflict=0.05), enabled=False
        ),
        config=CoreServiceConfig(workers=2),
    )
    batch = copy.deepcopy(changes)
    started = time.perf_counter()
    for change in batch:
        service.submit(change)
    decisions = service.pump()
    wall = time.perf_counter() - started
    fingerprint = fingerprint_digest(service)
    stats = service.planner.stats
    sim_minutes = service.clock.now
    green = all(service.repo.mainline_green_flags())
    service.close()
    return workload.CellResult(
        backend="batching-off",
        wall_seconds=wall,
        fingerprint=fingerprint,
        decisions=tuple((d.change_id, d.committed, d.at) for d in decisions),
        builds_started=stats.builds_started,
        steps_executed=stats.steps_executed,
        sim_minutes=sim_minutes,
        mainline_green=green,
    )
