"""Figure 14: the mainline's state before SubmitQueue.

Paper: over one pre-launch week of trunk-based development the iOS
mainline was green only ~52 % of the time, with visible day-to-day
swings; since SubmitQueue's launch it has stayed green always.  The
second test shows the "after" half of that sentence: the same change mix
run through SubmitQueue leaves every commit point green.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import figure14


@pytest.fixture(scope="module")
def result():
    outcome = figure14.run(days=7.0)
    emit("fig14_prior_mainline", figure14.format_result(outcome))
    return outcome


def test_reproduces_figure14_shape(result):
    # Paper: 52% green.  Our trunk-based simulation is calibrated to land
    # in the same band.
    assert 0.35 <= result.green_fraction <= 0.70
    assert result.breakages >= 3 * result.days, "multiple daily breakages"
    # Hour-to-hour variance is the figure's visual signature: both fully
    # green and fully red hours occur.
    assert max(result.hourly_green_percent) == pytest.approx(100.0)
    assert min(result.hourly_green_percent) < 20.0


def test_submitqueue_keeps_master_green_always():
    """The after picture: same ingredients, zero red commit points."""
    from repro.predictor.predictors import StaticPredictor
    from repro.service.api import SubmitQueueService
    from repro.service.core import CoreService, CoreServiceConfig
    from repro.strategies.submitqueue import SubmitQueueStrategy
    from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo

    monorepo = SyntheticMonorepo(MonorepoSpec(layers=(3, 4, 5), fan_in=2), seed=14)
    service = SubmitQueueService(
        CoreService(
            repo=monorepo.repo,
            strategy=SubmitQueueStrategy(StaticPredictor(0.85, 0.15)),
            config=CoreServiceConfig(workers=4),
        )
    )
    layer0 = monorepo.target_names(0)
    for index in range(12):
        if index % 4 == 3:
            service.land_change(monorepo.make_broken_change(layer0[index % 3]))
        else:
            service.land_change(monorepo.make_clean_change(layer0[index % 3]))
        service.process()
    assert service.mainline_is_green()
    assert monorepo.repo.green_fraction() == 1.0


def test_benchmark_trunk_simulation(benchmark, result):
    benchmark(figure14.run, days=1.0, seed=3)
