"""Section 8.4's prediction, measured: wider graphs gain at least as much
from the conflict analyzer and commit more changes in parallel."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import wide_vs_deep


@pytest.fixture(scope="module")
def result():
    outcome = wide_vs_deep.run(changes=200, workers=300)
    emit("wide_vs_deep", wide_vs_deep.format_result(outcome))
    return outcome


def test_both_profiles_benefit(result):
    for name, improvement in result.improvement.items():
        assert improvement > 0.1, name


def test_wide_graph_gains_at_least_as_much(result):
    assert (
        result.improvement["wide (backend)"]
        >= result.improvement["deep (iOS)"] - 0.05
    )


def test_wide_graph_is_less_serialized(result):
    assert (
        result.mean_conflicting_ancestors["wide (backend)"]
        < result.mean_conflicting_ancestors["deep (iOS)"]
    )


def test_benchmark_wide_profile_cell(benchmark, result):
    from dataclasses import replace

    from repro.changes.truth import potential_conflict
    from repro.experiments.runner import run_cell
    from repro.strategies.oracle import OracleStrategy
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.scenarios import BACKEND_WORKLOAD

    stream = WorkloadGenerator(replace(BACKEND_WORKLOAD, seed=4)).stream(300, 60)
    benchmark(run_cell, OracleStrategy(), stream, 100, potential_conflict)
