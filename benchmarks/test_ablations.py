"""Ablations of SubmitQueue's design choices (DESIGN.md section 5).

Not figures from the paper, but measurements of the individual techniques
it stacks:

* predictor quality — oracle vs. learned vs. static-0.5 probabilities;
* minimal-build-step elimination (section 6) on vs. off;
* batching (the section-2.2 alternative SubmitQueue rejects) across
  batch sizes.
"""

import pytest

from benchmarks.conftest import emit
from repro.changes.truth import potential_conflict
from repro.experiments.runner import CellSummary, format_table, make_stream, run_cell
from repro.metrics.percentile import summarize
from repro.predictor.predictors import OraclePredictor, StaticPredictor
from repro.strategies.batch import BatchStrategy
from repro.strategies.oracle import OracleStrategy
from repro.strategies.submitqueue import SubmitQueueStrategy

RATE = 300
WORKERS = 200
CHANGES = 200


@pytest.fixture(scope="module")
def stream():
    return make_stream(RATE, CHANGES, seed=2024)


class TestPredictorQualityAblation:
    def test_better_predictions_mean_lower_turnaround(
        self, stream, trained_predictor
    ):
        learned, _ = trained_predictor
        rows = []
        p95 = {}
        for label, predictor in [
            ("oracle", OraclePredictor()),
            ("learned", learned),
            ("static 0.5", StaticPredictor(0.5, 0.5)),
        ]:
            result = run_cell(
                SubmitQueueStrategy(predictor), stream, WORKERS, potential_conflict
            )
            stats = summarize(result.turnaround_values())
            p95[label] = stats["p95"]
            rows.append(
                [label, f"{stats['p50']:.0f}", f"{stats['p95']:.0f}",
                 str(result.builds_aborted),
                 f"{result.wasted_minutes:.0f}"]
            )
        emit(
            "ablation_predictor",
            format_table(
                ["predictor", "P50", "P95", "aborts", "wasted build-min"],
                rows,
                title="Ablation: predictor quality (SubmitQueue selection)",
            ),
        )
        assert p95["oracle"] <= p95["learned"] + 1e-9
        assert p95["learned"] <= p95["static 0.5"] * 1.1


class TestStepEliminationAblation:
    def test_elimination_reduces_build_minutes(self, stream):
        with_elim = run_cell(
            OracleStrategy(), stream, WORKERS, potential_conflict,
            step_elimination=True,
        )
        without = run_cell(
            OracleStrategy(), stream, WORKERS, potential_conflict,
            step_elimination=False,
        )
        emit(
            "ablation_step_elimination",
            format_table(
                ["mode", "total build-min", "P95 turnaround"],
                [
                    ["eliminate covered steps", f"{with_elim.build_minutes:.0f}",
                     f"{summarize(with_elim.turnaround_values())['p95']:.0f}"],
                    ["re-run stacked steps", f"{without.build_minutes:.0f}",
                     f"{summarize(without.turnaround_values())['p95']:.0f}"],
                ],
                title="Ablation: minimal-build-steps elimination (section 6)",
            ),
        )
        assert with_elim.build_minutes <= without.build_minutes
        assert summarize(with_elim.turnaround_values())["p95"] <= summarize(
            without.turnaround_values()
        )["p95"] * 1.05


class TestBatchingAblation:
    @pytest.mark.parametrize("batch_size", [2, 8, 16])
    def test_batching_trades_latency_for_build_count(self, stream, batch_size):
        result = run_cell(
            BatchStrategy(batch_size=batch_size), stream, WORKERS,
            potential_conflict,
        )
        stats = summarize(result.turnaround_values())
        # Batches land whole or bisect: everyone decided either way.
        assert result.changes_committed + result.changes_rejected == CHANGES
        # Record the tradeoff for the results file.
        emit(
            f"ablation_batch_{batch_size}",
            format_table(
                ["batch size", "P50", "P95", "builds", "throughput/h"],
                [[str(batch_size), f"{stats['p50']:.0f}", f"{stats['p95']:.0f}",
                  str(result.builds_completed),
                  f"{result.throughput_per_hour:.1f}"]],
                title="Ablation: Chromium-style batching",
            ),
        )

    def test_submitqueue_beats_batching(self, stream):
        batched = run_cell(
            BatchStrategy(batch_size=8), stream, WORKERS, potential_conflict
        )
        submitqueue = run_cell(
            SubmitQueueStrategy(OraclePredictor()), stream, WORKERS,
            potential_conflict,
        )
        assert (
            summarize(submitqueue.turnaround_values())["p95"]
            < summarize(batched.turnaround_values())["p95"]
        )


class TestRiskBatchingAblation:
    """Risk-aware batches vs Chromium-style batches vs plain SubmitQueue.

    Run at a worker count the arrival rate saturates, where plain
    SubmitQueue hits the figure-12 ceiling: risk batches must land more
    changes per hour with fewer builds while keeping the per-change
    shippable-commit guarantee the naive batching mode gives up.
    """

    SATURATED_WORKERS = 16

    def test_risk_batching_beats_plain_under_saturation(self, stream):
        from repro.strategies.risk_batch import RiskBatchStrategy

        plain = run_cell(
            SubmitQueueStrategy(OraclePredictor()), stream,
            self.SATURATED_WORKERS, potential_conflict,
        )
        naive = run_cell(
            BatchStrategy(batch_size=8), stream, self.SATURATED_WORKERS,
            potential_conflict,
        )
        risk_strategy = RiskBatchStrategy(
            OraclePredictor(), batch_size=8, min_joint_success=0.3
        )
        risk = run_cell(
            risk_strategy, stream, self.SATURATED_WORKERS, potential_conflict
        )
        rows = []
        for label, result in [
            ("plain SubmitQueue", plain),
            ("naive batch(8)", naive),
            ("risk batch(8)", risk),
        ]:
            stats = summarize(result.turnaround_values())
            rows.append(
                [label, f"{result.throughput_per_hour:.1f}",
                 str(result.builds_completed),
                 str(result.changes_committed),
                 f"{stats['p95']:.0f}"]
            )
        emit(
            "ablation_risk_batching",
            format_table(
                ["mode", "throughput/h", "builds", "commits",
                 "P95 turnaround"],
                rows,
                title=(
                    f"Ablation: risk-aware batching "
                    f"({self.SATURATED_WORKERS} workers, saturated)"
                ),
            ),
        )
        # Every change still gets an individual decision (no shippable-batch
        # semantics), and batching must not lose commits.
        assert risk.changes_committed + risk.changes_rejected == CHANGES
        assert risk.changes_committed >= plain.changes_committed - 2
        # The win: fewer builds, more changes landed per simulated hour.
        assert risk.builds_completed < plain.builds_completed
        assert risk.throughput_per_hour > plain.throughput_per_hour
        assert risk_strategy.batch_stats.batches_landed > 0


class TestFutureWorkAblations:
    """Section 10's refinements, measured (implemented in this repo)."""

    def test_preemption_grace_reduces_waste(self, stream, trained_predictor):
        learned, _ = trained_predictor
        from repro.planner.planner import PlannerEngine
        from repro.planner.workers import WorkerPool
        from repro.planner.controller import LabelBuildController
        from repro.sim.simulator import Simulation

        def run_with_grace(grace):
            simulation = Simulation(
                strategy=SubmitQueueStrategy(learned),
                controller=LabelBuildController(),
                workers=WORKERS,
                conflict_predicate=potential_conflict,
            )
            simulation.planner.preemption_grace = grace
            return simulation.run(list(stream))

        without = run_with_grace(0.0)
        with_grace = run_with_grace(10.0)
        emit(
            "ablation_preemption",
            format_table(
                ["grace (min)", "aborted builds", "wasted build-min",
                 "P95 turnaround"],
                [
                    ["0", str(without.builds_aborted),
                     f"{without.wasted_minutes:.0f}",
                     f"{summarize(without.turnaround_values())['p95']:.0f}"],
                    ["10", str(with_grace.builds_aborted),
                     f"{with_grace.wasted_minutes:.0f}",
                     f"{summarize(with_grace.turnaround_values())['p95']:.0f}"],
                ],
                title="Ablation: build-preemption grace (section 10)",
            ),
        )
        assert with_grace.wasted_minutes <= without.wasted_minutes

    def test_reordering_rescues_changes_behind_doomed_ones(self, stream):
        from repro.predictor.predictors import OraclePredictor
        from repro.strategies.reordering import ReorderingSubmitQueueStrategy

        plain = run_cell(
            SubmitQueueStrategy(OraclePredictor()), stream, WORKERS,
            potential_conflict,
        )
        reordered = run_cell(
            ReorderingSubmitQueueStrategy(OraclePredictor()), stream, WORKERS,
            potential_conflict,
        )
        plain_stats = summarize(plain.turnaround_values())
        reordered_stats = summarize(reordered.turnaround_values())
        emit(
            "ablation_reordering",
            format_table(
                ["mode", "P50", "P95", "commits"],
                [
                    ["submission order", f"{plain_stats['p50']:.0f}",
                     f"{plain_stats['p95']:.0f}", str(plain.changes_committed)],
                    ["doomed-jump reordering", f"{reordered_stats['p50']:.0f}",
                     f"{reordered_stats['p95']:.0f}",
                     str(reordered.changes_committed)],
                ],
                title="Ablation: change reordering (section 10)",
            ),
        )
        # Reordering must never lose commits, and should not hurt the tail.
        assert reordered.changes_committed >= plain.changes_committed - 1
        assert reordered_stats["p95"] <= plain_stats["p95"] * 1.1

    def test_independent_batching_saves_builds(self, stream):
        from repro.predictor.predictors import OraclePredictor
        from repro.strategies.independent_batch import IndependentBatchStrategy

        plain = run_cell(
            SubmitQueueStrategy(OraclePredictor()), stream, WORKERS,
            potential_conflict,
        )
        batched = run_cell(
            IndependentBatchStrategy(OraclePredictor(), batch_size=4),
            stream, WORKERS, potential_conflict,
        )
        emit(
            "ablation_independent_batching",
            format_table(
                ["mode", "builds completed", "commits", "P95 turnaround"],
                [
                    ["separate builds", str(plain.builds_completed),
                     str(plain.changes_committed),
                     f"{summarize(plain.turnaround_values())['p95']:.0f}"],
                    ["batched independents", str(batched.builds_completed),
                     str(batched.changes_committed),
                     f"{summarize(batched.turnaround_values())['p95']:.0f}"],
                ],
                title="Ablation: batching independent changes (section 10)",
            ),
        )
        assert batched.builds_completed < plain.builds_completed
        assert batched.changes_committed >= plain.changes_committed - 3


def test_benchmark_plan_epoch(benchmark, trained_predictor):
    """Microbenchmark: one planner epoch over a loaded queue."""
    from repro.planner.controller import LabelBuildController
    from repro.planner.planner import PlannerEngine
    from repro.planner.workers import WorkerPool

    learned, _ = trained_predictor
    stream = make_stream(RATE, 150, seed=9)
    planner = PlannerEngine(
        strategy=SubmitQueueStrategy(learned),
        controller=LabelBuildController(),
        workers=WorkerPool(200),
        conflict_predicate=potential_conflict,
    )
    for time, change in stream:
        planner.submit(change, time)

    def one_epoch():
        result = planner.plan(0.0)
        # Abort everything so the next iteration replans from scratch
        # (planner._abort keys stay restartable and unindexed twice).
        for key in planner.workers.running_builds():
            planner._abort(key, 0.0)
        return len(result.started)

    benchmark(one_epoch)
