"""Figure 11: P50/P95/P99 turnaround normalized against the Oracle.

Paper's headline comparison.  Expected shape (section 8.2):

* SubmitQueue stays within a small factor of the Oracle and improves as
  workers are added;
* Speculate-all and Optimistic are several-fold worse than SubmitQueue;
* Optimistic barely improves with more workers (its progress is gated by
  the run of contiguous successes, not machines).

Absolute multipliers depend on the conflict-graph density of the replayed
workload (ours is calibrated to Figure 1/2, the paper's to production
traces), so assertions target ordering and trends, not exact values.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import figure11

RATES = (100, 300, 500)
WORKERS = (100, 300, 500)


@pytest.fixture(scope="module")
def result(trained_predictor):
    predictor, _ = trained_predictor
    outcome = figure11.run(
        rates=RATES,
        workers=WORKERS,
        changes_per_cell=250,
        strategies=("SubmitQueue", "Speculate-all", "Optimistic"),
        predictor=predictor,
    )
    text = "\n\n".join(
        figure11.format_result(outcome, metric) for metric in ("p50", "p95", "p99")
    )
    emit("fig11_turnaround", text)
    return outcome


def test_reproduces_figure11_shape(result):
    for rate in RATES:
        for workers in WORKERS:
            cell = (rate, workers)
            submitqueue = result.normalized["SubmitQueue"][cell]
            speculate = result.normalized["Speculate-all"][cell]
            optimistic = result.normalized["Optimistic"][cell]
            # SubmitQueue within a small factor of the Oracle everywhere.
            assert submitqueue["p50"] < 2.5
            # The baselines lose to SubmitQueue at the tail in every cell.
            assert speculate["p95"] > submitqueue["p95"] * 0.9
            assert optimistic["p95"] > submitqueue["p95"]


def test_optimistic_flat_in_workers(result):
    """Adding workers does not rescue optimistic execution (section 8.3)."""
    for rate in (300, 500):
        few = result.raw["Optimistic"][(rate, 100)].p50
        many = result.raw["Optimistic"][(rate, 500)].p50
        assert many > 0.5 * few, "5x workers buys optimistic < 2x at P50"


def test_submitqueue_improves_with_workers(result):
    for rate in (300, 500):
        few = result.raw["SubmitQueue"][(rate, 100)].p95
        many = result.raw["SubmitQueue"][(rate, 500)].p95
        assert many <= few + 1e-9


def test_benchmark_submitqueue_cell(benchmark, trained_predictor, result):
    from repro.changes.truth import potential_conflict
    from repro.experiments.runner import make_stream, run_cell
    from repro.strategies.submitqueue import SubmitQueueStrategy

    predictor, _ = trained_predictor
    stream = make_stream(300, 80, seed=55)
    benchmark(
        run_cell, SubmitQueueStrategy(predictor), stream, 150, potential_conflict
    )
