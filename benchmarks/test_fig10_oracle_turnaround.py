"""Figure 10: CDF of Oracle turnaround at 100-500 changes/hour.

Paper: with 2000 workers (no resource contention) the Oracle's turnaround
CDF shifts right as the ingestion rate grows — the cost of serializing
conflicting changes — while staying within roughly the build-duration
envelope (everything decided within ~2x the 120-minute max build).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import figure10


@pytest.fixture(scope="module")
def result():
    outcome = figure10.run(rates=(100, 300, 500), changes_per_rate=350, workers=2000)
    emit("fig10_oracle_turnaround", figure10.format_result(outcome))
    return outcome


def test_reproduces_figure10_shape(result):
    # Turnaround grows with ingestion rate (denser pending sets -> more
    # conflicting predecessors to wait for).
    assert result.p50_by_rate[100] <= result.p50_by_rate[300] + 5
    assert result.p50_by_rate[300] <= result.p50_by_rate[500] + 5
    # The serialization cost is visible: P50 above the ~28-minute build
    # median at every rate.
    for rate in result.rates:
        assert result.p50_by_rate[rate] >= 25
    # ...but bounded: nothing drags far beyond the build-duration envelope.
    for rate in result.rates:
        assert result.p99_by_rate[rate] <= 3 * 120


def test_cdf_values_monotone(result):
    for rate in result.rates:
        series = result.cdf_by_rate[rate]
        assert series == sorted(series)


def test_benchmark_oracle_run(benchmark, result):
    from repro.changes.truth import potential_conflict
    from repro.experiments.runner import make_stream, run_cell
    from repro.strategies.oracle import OracleStrategy

    stream = make_stream(200, 80, seed=99)
    benchmark(run_cell, OracleStrategy(), stream, 200, potential_conflict)
