"""Sharded conflict analysis: warm per-change sweep latency at deep queues.

The paper's production deployment shards SubmitQueue by Helix partition
(section 7.1) because the per-change conflict sweep scales with total
pending.  This benchmark reproduces that effect on the reproduction's
target-graph partitioner: an 8-island monorepo with 256 pending changes,
where the monolithic analyzer pair-tests each new change against *every*
earlier pending change while the partition-sharded queue tests only the
change's own shard plus straddlers.

Acceptance at the deep cell (256 pending, 8 partitions): the sharded
warm per-change analyze+sweep time must be >= 2x faster, and a mirrored
end-to-end service run must land the *same* changes with zero red
commits and a bit-identical state fingerprint — sharding buys latency,
never decisions.

A service-path smoke variant always runs (and is the CI gate): the
figure-12 cell under ``sharded:4`` must produce a state fingerprint
bit-identical to the monolithic queue.  Every datapoint lands in
``benchmarks/results/BENCH_shard.json``.
"""

import copy
import os
import time

import pytest

from benchmarks.conftest import emit, record_shard_bench
from repro.conflict.analyzer import ConflictAnalyzer
from repro.conflict.conflict_graph import ConflictGraph
from repro.experiments.runner import format_table
from repro.parallel import workload
from repro.sharding import PartitionedPendingQueue, ShardedConflictAnalyzer
from repro.sharding.workload import mint_partitioned_cell

#: The deep cell: pending depth, island count, shard count.
PENDING_DEPTH = 256
ISLANDS = 8
SHARDS = 8
#: Acceptance floor: warm sharded sweep vs warm monolithic sweep.
SPEEDUP_FLOOR = 2.0

_SMOKE_ONLY = os.environ.get("SHARD_BENCH_SMOKE") == "1"


def _mint_deep_cell():
    return mint_partitioned_cell(
        islands=ISLANDS,
        seed=1911,
        count=PENDING_DEPTH,
        layers=(3, 4, 3),
        files_per_target=4,
    )


def _time_sweep(files, changes, sharded):
    """Warm per-change analyze+sweep seconds over the full pending set.

    Mirrors the planner's submit path — analyze the change, then extend
    the conflict graph against everything already pending — with analyses
    pre-warmed so the timed region isolates the pairwise sweep the
    monolithic path spends O(pending) on.
    """
    if sharded:
        analyzer = ShardedConflictAnalyzer(dict(files), shards=SHARDS)
        queue = PartitionedPendingQueue(analyzer, shard_count=SHARDS)
    else:
        analyzer = ConflictAnalyzer(dict(files))
        queue = None
    batch = copy.deepcopy(changes)
    if queue is not None:
        for change in batch:
            queue.enqueue(change)
    for change in batch:
        analyzer.analyze(change)  # warm the per-change caches
    graph = ConflictGraph(analyzer.conflict)
    started = time.perf_counter()
    for change in batch:
        analyzer.analyze(change)
        if queue is not None:
            graph.add(change, queue.conflict_candidates(change))
        else:
            graph.add(change)
    wall = time.perf_counter() - started
    checks = analyzer.stats.checks
    skipped = getattr(analyzer, "pair_checks_skipped", 0)
    return wall, checks, skipped


def _run_service_cell(files, changes, queue_backend):
    return workload.run_cell(
        files, copy.deepcopy(changes), service_workers=8,
        queue_backend=queue_backend,
    )


@pytest.mark.skipif(
    _SMOKE_ONLY, reason="SHARD_BENCH_SMOKE=1 runs only the smoke cell"
)
def test_shard_sweep_speedup_deep_queue():
    """Acceptance: >= 2x warm sweep at 256 pending over 8 partitions."""
    files, changes = _mint_deep_cell()
    mono_wall, mono_checks, _ = _time_sweep(files, changes, sharded=False)
    shard_wall, shard_checks, skipped = _time_sweep(
        files, changes, sharded=True
    )
    speedup = mono_wall / shard_wall if shard_wall > 0 else float("inf")
    mono_ms = mono_wall * 1000.0 / len(changes)
    shard_ms = shard_wall * 1000.0 / len(changes)

    # The narrowed sweep must be exact, not heuristic: identical edges.
    mono_service = _run_service_cell(files, changes, None)
    shard_service = _run_service_cell(files, changes, f"sharded:{SHARDS}")
    assert shard_service.fingerprint == mono_service.fingerprint
    assert shard_service.decisions == mono_service.decisions
    assert shard_service.committed == mono_service.committed == len(changes)
    assert mono_service.mainline_green and shard_service.mainline_green

    record_shard_bench(
        f"deep_queue_p{PENDING_DEPTH}_s{SHARDS}",
        {
            "pending": len(changes),
            "islands": ISLANDS,
            "shards": SHARDS,
            "mono_per_change_ms": round(mono_ms, 4),
            "sharded_per_change_ms": round(shard_ms, 4),
            "warm_speedup": round(speedup, 3),
            "mono_pair_checks": mono_checks,
            "sharded_pair_checks": shard_checks,
            "pair_checks_skipped": skipped,
            "landed": shard_service.committed,
            "red_commits": 0,
            "floor": SPEEDUP_FLOOR,
        },
    )
    emit(
        "shard_throughput",
        format_table(
            ("mode", "per-change ms", "pair checks", "landed", "fingerprint"),
            [
                ("monolithic", f"{mono_ms:.3f}", mono_checks,
                 mono_service.committed, mono_service.fingerprint[:12]),
                (f"sharded:{SHARDS}", f"{shard_ms:.3f}", shard_checks,
                 shard_service.committed, shard_service.fingerprint[:12]),
            ],
            title=(
                f"sharded sweep @ {len(changes)} pending over {ISLANDS} "
                f"islands ({speedup:.2f}x warm, {skipped} pair checks "
                "skipped, fingerprints identical)"
            ),
        ),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm sweep speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )


def test_sharded_fingerprint_smoke():
    """CI cell: figure-12 under sharded:4 is bit-identical to monolithic."""
    files, changes = workload.mint_cell(seed=7, count=12)
    plain = workload.run_cell(files, copy.deepcopy(changes), service_workers=4)
    sharded = workload.run_cell(
        files, copy.deepcopy(changes), service_workers=4,
        queue_backend="sharded:4",
    )
    record_shard_bench(
        "smoke_fingerprint",
        {
            "plain_fingerprint": plain.fingerprint,
            "sharded_fingerprint": sharded.fingerprint,
            "identical": sharded.fingerprint == plain.fingerprint,
            "landed": sharded.committed,
        },
    )
    emit(
        "shard_throughput_smoke",
        format_table(
            ("mode", "landed", "builds", "fingerprint"),
            [
                ("monolithic", plain.committed, plain.builds_started,
                 plain.fingerprint[:12]),
                ("sharded:4", sharded.committed, sharded.builds_started,
                 sharded.fingerprint[:12]),
            ],
            title="sharded-queue bit-identity smoke (service path)",
        ),
    )
    assert sharded.fingerprint == plain.fingerprint
    assert sharded.decisions == plain.decisions
    assert sharded.committed == len(changes)
    assert sharded.mainline_green
