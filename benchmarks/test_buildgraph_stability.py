"""Section 5.2: build-graph stability and the analyzer fast path.

Paper: only 7.9 % of iOS and 1.6 % of backend changes alter build-graph
structure, so the conflict analyzer resolves almost every pairwise check
on the cheap name-intersection path.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import buildgraph_stability


@pytest.fixture(scope="module")
def result():
    outcome = buildgraph_stability.run(label_samples=4000, fullstack_changes=20)
    emit("buildgraph_stability", buildgraph_stability.format_result(outcome))
    return outcome


def test_reproduces_section52(result):
    assert result.label_rates["ios"] == pytest.approx(0.079, abs=0.02)
    assert result.label_rates["backend"] == pytest.approx(0.016, abs=0.01)
    # With 15% structural changes in the full-stack batch, (0.85)^2 ~ 72%
    # of pair checks resolve on the fast path (both sides content-only).
    assert result.fullstack_fast_path_rate > 0.6
    assert result.checks > 100


def test_benchmark_pairwise_analysis(benchmark, result):
    from repro.conflict.analyzer import ConflictAnalyzer
    from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo

    monorepo = SyntheticMonorepo(MonorepoSpec(layers=(4, 6, 8), fan_in=2), seed=31)
    changes = [monorepo.make_clean_change() for _ in range(10)]

    def analyze_all_pairs():
        analyzer = ConflictAnalyzer(monorepo.repo.snapshot().to_dict())
        for i, first in enumerate(changes):
            for second in changes[i + 1 :]:
                analyzer.conflict(first, second)
        return analyzer.stats.checks

    benchmark(analyze_all_pairs)
