"""Executor throughput: incremental vs from-scratch full-stack builds.

The incremental executor memoizes the base-side graph/hash work per
mainline head, applies patches as copy-on-write overlays with dirty-set
rehashing, and reuses speculation-prefix states across parent/child
builds.  These benchmarks measure warm-vs-cold build latency against an
unchanged base at several speculation depths, the prefix-hit rate and
builds/sec of sequential speculation chains, and a figure-12-style
end-to-end before/after cell; every datapoint lands in
``BENCH_exec.json`` (the executor counterpart of ``BENCH_planner.json``).
"""

import time

import pytest

from benchmarks.conftest import record_exec_bench
from repro.planner.controller import FullStackBuildController
from repro.predictor.predictors import StaticPredictor
from repro.service.core import CoreService, CoreServiceConfig
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.types import BuildKey
from repro.vcs.repository import Repository
from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo

SPEC = MonorepoSpec(layers=(8, 12, 16, 12, 8), fan_in=2)
WARM_DEPTHS = (0, 8)
CHAIN_DEPTHS = (1, 2, 4, 8, 16)


def _per_call(fn, calls: int, repeats: int) -> float:
    """Best-of-N mean seconds per call (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - start) / calls)
    return best


def _chain(monorepo, depth: int, offset: int = 0):
    """``depth + 1`` clean changes over distinct targets (no merge conflicts)."""
    targets = monorepo.target_names()
    changes = [
        monorepo.make_clean_change(targets[(offset + i) % len(targets)])
        for i in range(depth + 1)
    ]
    return {change.change_id: change for change in changes}, [
        change.change_id for change in changes
    ]


def _controller(monorepo, incremental: bool) -> FullStackBuildController:
    # A private repository copy per controller: commits and caches must
    # not leak between the variants being compared.
    files = monorepo.repo.snapshot().to_dict()
    return FullStackBuildController(
        Repository(dict(files)), incremental=incremental
    )


@pytest.mark.parametrize("depth", WARM_DEPTHS)
def test_build_warm_vs_cold(depth, request):
    """Acceptance: warm builds >= 5x faster than cold at depth >= 8."""
    monorepo = SyntheticMonorepo(SPEC, seed=7)
    changes, ids = _chain(monorepo, depth)
    key = BuildKey(ids[-1], frozenset(ids[:-1]))
    warm_controller = _controller(monorepo, incremental=True)
    cold_controller = _controller(monorepo, incremental=False)
    warm_controller.execute(key, changes)  # prime context + prefix caches
    cold_controller.execute(key, changes)  # prime the artifact cache only

    warm = _per_call(lambda: warm_controller.execute(key, changes), 10, 5)
    cold = _per_call(lambda: cold_controller.execute(key, changes), 2, 5)
    speedup = cold / warm if warm else float("inf")
    record_exec_bench(
        f"build_depth_{depth}",
        {
            "speculation_depth": depth,
            "targets": len(monorepo.target_names()),
            "cold_build_seconds": cold,
            "warm_build_seconds": warm,
            "cold_builds_per_sec": 1.0 / cold if cold else float("inf"),
            "warm_builds_per_sec": 1.0 / warm if warm else float("inf"),
            "speedup": speedup,
        },
    )
    if depth >= 8 and not request.config.getoption("--benchmark-disable"):
        assert speedup >= 5.0, f"warm build only {speedup:.1f}x faster than cold"


@pytest.mark.parametrize("depth", CHAIN_DEPTHS)
def test_speculation_chain_throughput(depth, request):
    """Sequential parent-then-child chains: prefix reuse vs from-scratch."""
    monorepo = SyntheticMonorepo(SPEC, seed=11)
    changes, ids = _chain(monorepo, depth)
    keys = [
        BuildKey(ids[i], frozenset(ids[:i])) for i in range(len(ids))
    ]

    def run(incremental: bool):
        controller = _controller(monorepo, incremental=incremental)
        start = time.perf_counter()
        for key in keys:
            execution = controller.execute(key, changes)
            assert execution.success
        return time.perf_counter() - start, controller.stats

    incremental_seconds, stats = run(incremental=True)
    scratch_seconds, _ = run(incremental=False)
    record_exec_bench(
        f"chain_depth_{depth}",
        {
            "speculation_depth": depth,
            "builds": len(keys),
            "incremental_seconds": incremental_seconds,
            "scratch_seconds": scratch_seconds,
            "incremental_builds_per_sec": len(keys) / incremental_seconds,
            "scratch_builds_per_sec": len(keys) / scratch_seconds,
            "speedup": scratch_seconds / incremental_seconds,
            "prefix_hit_rate": stats.prefix_hit_rate,
            "targets_rehashed": stats.targets_rehashed,
            "base_context_loads": stats.base_context_loads,
        },
    )
    if depth >= 4 and not request.config.getoption("--benchmark-disable"):
        assert stats.prefix_hit_rate > 0.0
        assert stats.base_context_loads == 1


def test_figure12_cell_before_after(request):
    """Figure-12-style end-to-end cell: one full-stack pump, both executors.

    The first datapoint of the perf trajectory: wall-clock seconds for a
    CoreService run (submit a batch, pump to empty) with the from-scratch
    executor vs the incremental one, identical workloads and decisions.
    """

    def run_cell(incremental: bool):
        monorepo = SyntheticMonorepo(SPEC, seed=23)
        targets = monorepo.target_names()
        service = CoreService(
            repo=monorepo.repo,
            strategy=SubmitQueueStrategy(
                StaticPredictor(success=0.9, conflict=0.05)
            ),
            config=CoreServiceConfig(
                workers=8, incremental_executor=incremental
            ),
        )
        batch = [
            monorepo.make_clean_change(targets[i * 3 % len(targets)])
            for i in range(16)
        ]
        start = time.perf_counter()
        for change in batch:
            service.submit(change)
        decisions = service.pump()
        elapsed = time.perf_counter() - start
        assert monorepo.repo.is_green()
        return elapsed, decisions

    scratch_seconds, scratch_decisions = run_cell(incremental=False)
    incremental_seconds, incremental_decisions = run_cell(incremental=True)
    # Identical workload, identical verdicts: only the executor differs.
    assert [d.committed for d in incremental_decisions] == [
        d.committed for d in scratch_decisions
    ]
    record_exec_bench(
        "figure12_cell",
        {
            "changes": 16,
            "workers": 8,
            "scratch_cell_seconds": scratch_seconds,
            "incremental_cell_seconds": incremental_seconds,
            "speedup": scratch_seconds / incremental_seconds,
            "decisions": len(incremental_decisions),
            "committed": sum(1 for d in incremental_decisions if d.committed),
        },
    )
    if not request.config.getoption("--benchmark-disable"):
        # The acceptance bar is "does not regress"; allow scheduler noise.
        assert incremental_seconds <= scratch_seconds * 1.10


def test_benchmark_warm_build_depth_8(benchmark):
    """pytest-benchmark kernel: the memoized-context warm build itself."""
    monorepo = SyntheticMonorepo(SPEC, seed=7)
    changes, ids = _chain(monorepo, 8)
    key = BuildKey(ids[-1], frozenset(ids[:-1]))
    controller = _controller(monorepo, incremental=True)
    controller.execute(key, changes)
    benchmark(controller.execute, key, changes)
    assert controller.stats.base_context_reuses > 0
