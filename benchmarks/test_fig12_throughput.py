"""Figure 12: average throughput normalized against the Oracle.

Paper (section 8.3): SubmitQueue has the least slowdown and approaches
the Oracle as workers grow; Single-Queue is worst (~95 % slowdown);
Optimistic's throughput "remains unchanged as we increase the number of
workers" because it is bounded by runs of contiguous successes.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import figure12

RATES = (300, 500)
WORKERS = (100, 300, 500)


@pytest.fixture(scope="module")
def result(trained_predictor):
    predictor, _ = trained_predictor
    outcome = figure12.run(
        rates=RATES,
        workers=WORKERS,
        changes_per_cell=220,
        strategies=("SubmitQueue", "Speculate-all", "Optimistic", "Single-Queue"),
        predictor=predictor,
    )
    emit("fig12_throughput", figure12.format_result(outcome))
    return outcome


def test_reproduces_figure12_shape(result):
    for rate in RATES:
        for workers in WORKERS:
            cell = (rate, workers)
            submitqueue = result.normalized_throughput["SubmitQueue"][cell]
            single_queue = result.normalized_throughput["Single-Queue"][cell]
            optimistic = result.normalized_throughput["Optimistic"][cell]
            # SubmitQueue closest to Oracle; Single-Queue the worst.
            assert submitqueue > optimistic
            assert submitqueue > single_queue
            assert single_queue < 0.25, "paper: ~95% slowdown"
    # SubmitQueue approaches the Oracle once provisioned (paper: ~20%
    # slowdown at 500 workers; throughput here is measured over the full
    # drain makespan, which taxes the tail, so the bar is slightly lower).
    for rate in RATES:
        assert result.normalized_throughput["SubmitQueue"][(rate, 500)] >= 0.6
        assert (
            result.normalized_throughput["SubmitQueue"][(rate, 500)]
            >= result.normalized_throughput["SubmitQueue"][(rate, 100)]
        )


def test_optimistic_throughput_flat_in_workers(result):
    for rate in RATES:
        few = result.normalized_throughput["Optimistic"][(rate, 100)]
        many = result.normalized_throughput["Optimistic"][(rate, 500)]
        assert abs(many - few) < 0.25, "machines do not help optimistic"


def test_benchmark_throughput_cell(benchmark, result):
    from repro.changes.truth import potential_conflict
    from repro.experiments.runner import make_stream, run_cell
    from repro.strategies.single_queue import SingleQueueStrategy

    stream = make_stream(300, 60, seed=66)
    benchmark(
        run_cell, SingleQueueStrategy(), stream, 100, potential_conflict
    )
