"""Figure 9: CDF of build duration for the iOS/Android monorepos.

Paper: near-identical CDFs for both platforms, median around half an
hour, everything within [0, 120] minutes.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import figure09


@pytest.fixture(scope="module")
def result():
    outcome = figure09.run(samples=30_000)
    emit("fig09_build_durations", figure09.format_result(outcome))
    return outcome


def test_reproduces_figure9_shape(result):
    for platform in ("iOS", "Android"):
        assert 20 <= result.medians[platform] <= 35, "median about half an hour"
        empirical = result.empirical[platform]
        analytic = result.analytic[platform]
        # Empirical draws track the analytic CDF everywhere on the grid.
        for e, a in zip(empirical, analytic):
            assert abs(e - a) < 0.03
        assert empirical[-1] == 1.0, "tail capped at 120 minutes"
    # The two platforms are near-identical (the paper overlays them).
    for e_ios, e_android in zip(result.empirical["iOS"], result.empirical["Android"]):
        assert abs(e_ios - e_android) < 0.1


def test_benchmark_duration_sampling(benchmark, result):
    import numpy as np

    from repro.sim.durations import IOS_DURATIONS

    rng = np.random.default_rng(0)
    benchmark(IOS_DURATIONS.sample, rng, 10_000)
