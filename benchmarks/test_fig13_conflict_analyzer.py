"""Figure 13: P95 turnaround improvement from the conflict analyzer.

Paper (section 8.4): the analyzer improves the Oracle's P95 turnaround by
up to ~60 %; SubmitQueue and Speculate-all benefit substantially too;
Optimistic gains only ~20 % (Zuul's global pipeline mostly ignores the
conflict structure) and Single-Queue's improvement does not grow with
workers.
"""

import pytest

from benchmarks.conftest import emit, record_conflict_bench
from repro.experiments import figure13

WORKERS = (100, 300)


@pytest.fixture(scope="module")
def result(trained_predictor):
    predictor, _ = trained_predictor
    outcome = figure13.run(
        rates=(300,),
        workers=WORKERS,
        changes_per_cell=220,
        strategies=("SubmitQueue", "Speculate-all", "Optimistic", "Single-Queue"),
        predictor=predictor,
    )
    emit("fig13_conflict_analyzer", figure13.format_result(outcome))
    return outcome


def test_reproduces_figure13_shape(result):
    for workers in WORKERS:
        cell = (300, workers)
        oracle = result.improvement["Oracle"][cell]
        submitqueue = result.improvement["SubmitQueue"][cell]
        speculate = result.improvement["Speculate-all"][cell]
        optimistic = result.improvement["Optimistic"][cell]
        # The analyzer buys the speculating strategies a lot...
        assert oracle > 0.15, "paper: up to ~60% for Oracle"
        assert submitqueue > 0.3
        assert speculate > 0.2
        # ...and Optimistic much less (paper: ~20%; Zuul's global pipeline
        # ignores conflict structure entirely in our faithful model).
        assert optimistic < oracle
        assert optimistic < 0.45
    # "Up to" 60%: the most contended cell shows the biggest win.
    assert result.improvement["Oracle"][(300, WORKERS[0])] > 0.3


def test_incremental_analyzer_counters():
    """Surface the carry-over effectiveness counters (section 5.2 at scale).

    Drives a real ConflictAnalyzer through a pending set and several
    mainline advances, then emits how much hashing and re-analysis the
    incremental machinery avoided.
    """
    from repro.conflict.analyzer import ConflictAnalyzer
    from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo

    mono = SyntheticMonorepo(MonorepoSpec(layers=(6, 12, 24), fan_in=2), seed=9)
    analyzer = ConflictAnalyzer(mono.repo.snapshot().to_dict())
    pending = [mono.make_clean_change() for _ in range(12)]
    for change in pending:
        analyzer.analyze(change)
    for i, first in enumerate(pending):
        for second in pending[i + 1:]:
            analyzer.conflict(first, second)

    # Commit four of the pending changes one by one, advancing the
    # analyzer across each mainline move instead of rebuilding it.
    for change in pending[:4]:
        mono.repo.commit_to_mainline(change.patch)
        analyzer.forget(change.change_id)
        analyzer.advance_base(
            mono.repo.snapshot().to_dict(), change.patch.paths
        )

    stats = analyzer.stats
    emit(
        "fig13_incremental_stats",
        "fig13 conflict analyzer: incremental effectiveness\n"
        f"  analyses              {stats.analyses}\n"
        f"  targets rehashed      {stats.targets_rehashed} / {stats.targets_total}"
        f" ({stats.rehash_fraction:.1%})\n"
        f"  head advances         {stats.head_advances}\n"
        f"  analyses revalidated  {stats.analyses_revalidated}\n"
        f"  analyses recomputed   {stats.analyses_recomputed}"
        f" (revalidation rate {stats.revalidation_rate:.1%})\n"
        f"  pair checks           {stats.checks} ({stats.fast_path_rate:.1%} fast path,"
        f" {stats.cached} cached)",
    )
    record_conflict_bench(
        "fig13_incremental_counters",
        {
            "analyses": stats.analyses,
            "targets_rehashed": stats.targets_rehashed,
            "targets_total": stats.targets_total,
            "rehash_fraction": stats.rehash_fraction,
            "head_advances": stats.head_advances,
            "analyses_revalidated": stats.analyses_revalidated,
            "analyses_recomputed": stats.analyses_recomputed,
        },
    )
    # Dirty-set hashing must be doing real work: far fewer hashes than a
    # from-scratch analyzer would compute, and at least some carried
    # analyses surviving the advances.
    assert stats.rehash_fraction < 0.6
    assert stats.analyses_revalidated > 0
    assert stats.head_advances == 4


def test_benchmark_analyzer_off_cell(benchmark, result):
    from repro.experiments.runner import all_conflict, make_stream, run_cell
    from repro.strategies.oracle import OracleStrategy

    stream = make_stream(300, 60, seed=77)
    benchmark(run_cell, OracleStrategy(), stream, 100, all_conflict)
