"""Figure 13: P95 turnaround improvement from the conflict analyzer.

Paper (section 8.4): the analyzer improves the Oracle's P95 turnaround by
up to ~60 %; SubmitQueue and Speculate-all benefit substantially too;
Optimistic gains only ~20 % (Zuul's global pipeline mostly ignores the
conflict structure) and Single-Queue's improvement does not grow with
workers.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import figure13

WORKERS = (100, 300)


@pytest.fixture(scope="module")
def result(trained_predictor):
    predictor, _ = trained_predictor
    outcome = figure13.run(
        rates=(300,),
        workers=WORKERS,
        changes_per_cell=220,
        strategies=("SubmitQueue", "Speculate-all", "Optimistic", "Single-Queue"),
        predictor=predictor,
    )
    emit("fig13_conflict_analyzer", figure13.format_result(outcome))
    return outcome


def test_reproduces_figure13_shape(result):
    for workers in WORKERS:
        cell = (300, workers)
        oracle = result.improvement["Oracle"][cell]
        submitqueue = result.improvement["SubmitQueue"][cell]
        speculate = result.improvement["Speculate-all"][cell]
        optimistic = result.improvement["Optimistic"][cell]
        # The analyzer buys the speculating strategies a lot...
        assert oracle > 0.15, "paper: up to ~60% for Oracle"
        assert submitqueue > 0.3
        assert speculate > 0.2
        # ...and Optimistic much less (paper: ~20%; Zuul's global pipeline
        # ignores conflict structure entirely in our faithful model).
        assert optimistic < oracle
        assert optimistic < 0.45
    # "Up to" 60%: the most contended cell shows the biggest win.
    assert result.improvement["Oracle"][(300, WORKERS[0])] > 0.3


def test_benchmark_analyzer_off_cell(benchmark, result):
    from repro.experiments.runner import all_conflict, make_stream, run_cell
    from repro.strategies.oracle import OracleStrategy

    stream = make_stream(300, 60, seed=77)
    benchmark(run_cell, OracleStrategy(), stream, 100, all_conflict)
