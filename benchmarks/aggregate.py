#!/usr/bin/env python
"""Fold benchmarks/results/BENCH_*.json into BENCH_summary.json.

Each benchmark suite overwrites its own ``BENCH_<suite>.json`` snapshot;
this script appends those snapshots — keyed by the current commit — to
the cumulative per-metric series in ``BENCH_summary.json``, the file
``python -m repro obs bench`` renders as a trajectory with regression
deltas.  Re-running on the same commit replaces that commit's entry
(idempotent), so CI can run it unconditionally.

Usage::

    PYTHONPATH=src python benchmarks/aggregate.py
    PYTHONPATH=src python benchmarks/aggregate.py --results-dir path/to/results
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.bench import (  # noqa: E402 (path bootstrap above)
    SUMMARY_NAME,
    collect_results,
    fold_results,
    git_short_sha,
    load_summary,
    write_summary,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        default=os.path.join(os.path.dirname(__file__), "results"),
        help="directory holding BENCH_*.json datapoint files",
    )
    parser.add_argument(
        "--commit",
        default=None,
        help="series key for this fold (default: git short sha)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"summary path (default: <results-dir>/{SUMMARY_NAME})",
    )
    args = parser.parse_args(argv)

    results = collect_results(args.results_dir)
    if not results:
        print(f"no BENCH_*.json datapoints under {args.results_dir}", file=sys.stderr)
        return 1
    output = args.output or os.path.join(args.results_dir, SUMMARY_NAME)
    commit = args.commit or git_short_sha(os.path.dirname(os.path.abspath(__file__)))
    summary = fold_results(results, summary=load_summary(output), commit=commit)
    write_summary(output, summary)
    points = sum(len(s) for s in summary["series"].values())
    print(
        f"folded {sum(len(k) for k in results.values())} kernels from "
        f"{len(results)} suites into {output} "
        f"({len(summary['series'])} series, {points} points, commit {commit})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
