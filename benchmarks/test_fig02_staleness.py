"""Figure 2: probability of mainline breakage vs. change staleness.

Paper: ~10-20 % at 1-10 hours of staleness, approaching certainty near
100 hours, monotonically increasing on a log-hour axis.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import figure02


@pytest.fixture(scope="module")
def result():
    outcome = figure02.run(trials=120)
    emit("fig02_staleness", figure02.format_result(outcome))
    return outcome


def test_reproduces_figure2_shape(result):
    for platform in ("iOS", "Android"):
        series = dict(zip(result.staleness_hours, result.by_platform[platform]))
        assert 0.02 <= series[1] <= 0.25, "1h staleness: low but nonzero"
        assert 0.10 <= series[10] <= 0.50, "10h staleness: paper shows 10-35%"
        assert series[100] >= 0.70, "100h staleness: near-certain breakage"
        values = [series[h] for h in result.staleness_hours]
        assert all(b >= a - 0.05 for a, b in zip(values, values[1:])), (
            "breakage grows with staleness"
        )


def test_benchmark_staleness_estimator(benchmark, result):
    benchmark(figure02.run, staleness_hours=(1, 10), trials=30)
