"""Section 7.2: prediction-model accuracy and feature analysis.

Paper: logistic regression over handpicked features, 70/30 split, ~97 %
accuracy; RFE trims the feature set; the named top-positive features
include presubmit-test status and revision test plans, and the
speculation-failure counters carry negative weight.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import model_accuracy


@pytest.fixture(scope="module")
def result():
    outcome = model_accuracy.run(history_size=5000, rfe_keep=8)
    emit("model_accuracy", model_accuracy.format_result(outcome))
    return outcome


def test_reproduces_section72(result):
    report = result.report
    assert report.success_metrics.accuracy >= 0.92, "paper: ~97%"
    assert report.success_metrics.auc >= 0.75
    # The conflict label is dominated by an irreducible coin given module
    # overlap (Figure 1's conditional probability); the learnable part —
    # overlap structure and developer fragility — still lifts AUC well
    # above chance.
    assert report.conflict_metrics.auc >= 0.58
    assert report.conflict_metrics.accuracy >= 0.9
    # Presubmit status is the strongest positive signal in our synthetic
    # history, matching the paper's "number of initial tests that
    # succeeded before submitting" being a top feature.
    assert "initial_tests_passed" in report.top_success_features(4)
    assert len(result.rfe_kept) == 8
    assert "initial_tests_passed" in result.rfe_kept


def test_benchmark_training(benchmark, result):
    from dataclasses import replace

    from repro.predictor.training import train_models
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.scenarios import IOS_WORKLOAD

    generator = WorkloadGenerator(replace(IOS_WORKLOAD, seed=88))
    history = generator.history(800)
    benchmark(train_models, history)
