#!/usr/bin/env python3
"""Mobile-release crunch: SubmitQueue vs. the baselines under load.

Recreates the paper's motivating scenario (section 1): hundreds of
changes land in a short window before a mobile release.  We replay the
same synthetic iOS-profile change stream through SubmitQueue, the Oracle,
Speculate-all, Optimistic (Zuul-style), and Single-Queue (Bors-style),
and print turnaround percentiles and throughput, normalized against the
Oracle — a miniature of Figures 11 and 12.

Run:  python examples/mobile_release_simulation.py [--changes N]
"""

import argparse
from dataclasses import replace

from repro.changes.truth import potential_conflict
from repro.experiments.runner import format_table
from repro.metrics.percentile import summarize
from repro.planner.controller import LabelBuildController
from repro.predictor.predictors import OraclePredictor
from repro.sim.simulator import Simulation
from repro.strategies.optimistic import OptimisticStrategy
from repro.strategies.oracle import OracleStrategy
from repro.strategies.single_queue import SingleQueueStrategy
from repro.strategies.speculate_all import SpeculateAllStrategy
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.workload.generator import WorkloadGenerator
from repro.workload.scenarios import IOS_WORKLOAD


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--changes", type=int, default=300)
    parser.add_argument("--rate", type=float, default=300.0,
                        help="changes per hour")
    parser.add_argument("--workers", type=int, default=200)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    generator = WorkloadGenerator(replace(IOS_WORKLOAD, seed=args.seed))
    stream = generator.stream(args.rate, args.changes)
    print(
        f"release crunch: {args.changes} changes at {args.rate:g}/hour, "
        f"{args.workers} workers\n"
    )

    strategies = [
        OracleStrategy(),
        SubmitQueueStrategy(OraclePredictor()),
        SpeculateAllStrategy(),
        OptimisticStrategy(),
        SingleQueueStrategy(),
    ]
    rows = []
    oracle_summary = None
    for strategy in strategies:
        simulation = Simulation(
            strategy=strategy,
            controller=LabelBuildController(),
            workers=args.workers,
            conflict_predicate=potential_conflict,
        )
        result = simulation.run(list(stream))
        stats = summarize(result.turnaround_values())
        if oracle_summary is None:
            oracle_summary = stats
        rows.append(
            [
                result.strategy_name,
                f"{stats['p50']:.0f}",
                f"{stats['p95']:.0f}",
                f"{stats['p50'] / oracle_summary['p50']:.2f}x",
                f"{stats['p95'] / oracle_summary['p95']:.2f}x",
                f"{result.throughput_per_hour:.0f}/h",
                f"{result.changes_committed}/{result.changes_submitted}",
                str(result.builds_aborted),
            ]
        )
    print(
        format_table(
            ["strategy", "P50 (min)", "P95 (min)", "P50 vs Oracle",
             "P95 vs Oracle", "throughput", "landed", "aborted builds"],
            rows,
            title="Turnaround and throughput (same change stream for all)",
        )
    )
    print(
        "\nReading: SubmitQueue tracks the Oracle; Speculate-all burns its "
        "budget on the exponential frontier; Optimistic restarts its tail "
        "on every rejection; Single-Queue serializes everything."
    )


if __name__ == "__main__":
    main()
