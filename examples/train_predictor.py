#!/usr/bin/env python3
"""Train SubmitQueue's prediction models and measure what they buy.

Reproduces section 7.2's pipeline: generate historical changes, extract
change/revision/developer/speculation features, train the success and
conflict logistic-regression models on a 70/30 split, run recursive
feature elimination, and report accuracy and the strongest features.
Then replays the same change stream through SubmitQueue three times —
with the learned predictor, with a naive static predictor, and with the
Oracle — to show where learned speculation lands between them.

Run:  python examples/train_predictor.py
"""

from dataclasses import replace

from repro.changes.truth import potential_conflict
from repro.experiments.runner import format_table
from repro.metrics.percentile import summarize
from repro.planner.controller import LabelBuildController
from repro.predictor.predictors import OraclePredictor, StaticPredictor
from repro.predictor.training import train_models
from repro.sim.simulator import Simulation
from repro.strategies.oracle import OracleStrategy
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.workload.generator import WorkloadGenerator
from repro.workload.scenarios import IOS_WORKLOAD


def main() -> None:
    # 1. Nine months of history, compressed: label-mode changes with the
    #    correlated features of section 7.2.
    generator = WorkloadGenerator(replace(IOS_WORKLOAD, seed=1234))
    history = generator.history(5000)
    print(f"training on {len(history)} historical changes (70/30 split)...")
    predictor, report = train_models(history, train_fraction=0.7, seed=7)

    print(
        format_table(
            ["model", "accuracy", "AUC", "positive rate"],
            [
                ["success", f"{report.success_metrics.accuracy:.3f}",
                 f"{report.success_metrics.auc:.3f}",
                 f"{report.success_metrics.positive_rate:.3f}"],
                ["conflict", f"{report.conflict_metrics.accuracy:.3f}",
                 f"{report.conflict_metrics.auc:.3f}",
                 f"{report.conflict_metrics.positive_rate:.3f}"],
            ],
            title="\nvalidation metrics (paper reports ~97% accuracy)",
        )
    )
    print("\nstrongest positive features:", ", ".join(report.top_success_features(3)))
    print("strongest negative features:", ", ".join(report.bottom_success_features(2)))

    # 2. Same stream, three predictors.
    stream = generator.stream(300.0, 250)
    rows = []
    oracle_stats = None
    for label, strategy in [
        ("Oracle", OracleStrategy()),
        ("SubmitQueue (learned)", SubmitQueueStrategy(predictor)),
        ("SubmitQueue (static 0.5)", SubmitQueueStrategy(StaticPredictor(0.5, 0.5))),
    ]:
        result = Simulation(
            strategy=strategy,
            controller=LabelBuildController(),
            workers=200,
            conflict_predicate=potential_conflict,
        ).run(list(stream))
        stats = summarize(result.turnaround_values())
        if oracle_stats is None:
            oracle_stats = stats
        rows.append(
            [label, f"{stats['p50']:.0f}", f"{stats['p95']:.0f}",
             f"{stats['p50'] / oracle_stats['p50']:.2f}x",
             str(result.builds_aborted)]
        )
    print(
        format_table(
            ["predictor", "P50 (min)", "P95 (min)", "P50 vs Oracle", "aborts"],
            rows,
            title="\nsame 250-change stream, 200 workers",
        )
    )


if __name__ == "__main__":
    main()
