#!/usr/bin/env python3
"""The conflict analyzer up close: target hashes, deltas, and Figure 8.

Walks through section 5 on a real (synthetic) monorepo:

1. affected-target deltas for a change (Algorithm 1 target hashes),
2. the name-intersection fast path for content-only changes,
3. the paper's Figure 8 trap — two changes whose affected-target *names*
   are disjoint but which still conflict through a new dependency edge —
   caught by the union-graph algorithm (Steps 1-4),
4. why conflict analysis matters: the same pending set serializes
   differently on a deep (iOS-like) vs. a wide (backend-like) repo.

Run:  python examples/conflict_analyzer_demo.py
"""

from repro.buildsys.delta import delta_names
from repro.changes.change import Change, Developer, next_change_id, next_revision_id
from repro.conflict.analyzer import ConflictAnalyzer
from repro.conflict.conflict_graph import ConflictGraph
from repro.vcs.patch import Patch
from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo


def wrap(patch, description):
    return Change(
        change_id=next_change_id(),
        revision_id=next_revision_id(),
        developer=Developer("demo-dev"),
        patch=patch,
        description=description,
    )


def main() -> None:
    monorepo = SyntheticMonorepo(MonorepoSpec(layers=(3, 4, 4), fan_in=2), seed=3)
    snapshot = monorepo.repo.snapshot().to_dict()
    analyzer = ConflictAnalyzer(snapshot)

    # 1. Affected-target delta of one change.
    base_target = monorepo.target_names(layer=0)[0]
    change = monorepo.make_clean_change(base_target)
    delta = analyzer.affected_targets(change)
    print(f"editing one source of {base_target} affects "
          f"{len(delta)} targets (the reverse-dependency closure):")
    for name in sorted(delta_names(delta)):
        print(f"  {name}")

    # 2. Fast path: content-only changes compare name sets.
    other = monorepo.make_clean_change(monorepo.target_names(layer=0)[1])
    print(f"\nconflict({change.change_id}, {other.change_id}) = "
          f"{analyzer.conflict(change, other)}")
    print(f"analyzer stats so far: {analyzer.stats.fast_path} fast-path, "
          f"{analyzer.stats.slow_path} slow-path checks")

    # 3. Figure 8: disjoint affected names, real structural interaction.
    leaf = monorepo.target_names(layer=0)[2]
    leaf_src = monorepo.source_of(leaf)
    c1 = wrap(
        Patch.modifying({leaf_src: snapshot[leaf_src] + "# edit\n"},
                        base={leaf_src: snapshot[leaf_src]}),
        f"content edit of {leaf}",
    )
    # c2 adds a brand-new target depending on a target *affected by c1*.
    dependent = sorted(monorepo.graph.transitive_dependents([leaf]))[-1]
    c2 = wrap(
        Patch.adding({
            "newpkg/BUILD": (
                "target(name='new', srcs=['n.py'], "
                f"deps = [{dependent!r}])"
            ),
            "newpkg/n.py": "N = 1\n",
        }),
        "adds //newpkg:new depending on " + dependent,
    )
    names_1 = delta_names(analyzer.affected_targets(c1))
    names_2 = delta_names(analyzer.affected_targets(c2))
    print(f"\nFigure-8 scenario:")
    print(f"  affected names of c1: {len(names_1)} targets")
    print(f"  affected names of c2: {sorted(names_2)}")
    print(f"  name intersection:    {sorted(names_1 & names_2)} (empty!)")
    print(f"  union-graph verdict:  conflict = {analyzer.conflict(c1, c2)}")
    print(f"  Equation-6 verdict:   conflict = {analyzer.conflict_equation6(c1, c2)}")

    # 4. Conflict-graph density: deep vs. wide repos.
    for label, spec in (
        ("deep (iOS-like)", MonorepoSpec(layers=(2, 3, 4, 5), fan_in=3)),
        ("wide (backend-like)", MonorepoSpec(layers=(14,), fan_in=1)),
    ):
        shaped = SyntheticMonorepo(spec, seed=9)
        shaped_analyzer = ConflictAnalyzer(shaped.repo.snapshot().to_dict())
        graph = ConflictGraph(shaped_analyzer.conflict)
        changes = [shaped.make_clean_change() for _ in range(10)]
        for pending in changes:
            graph.add(pending)
        print(
            f"\n{label}: 10 pending changes -> {graph.edge_count()} conflict "
            f"edges, {len(graph.components())} independent components"
        )
    print(
        "\nReading: the deeper the target graph, the denser the conflict "
        "graph, and the fewer changes can commit in parallel (section 8.4)."
    )


if __name__ == "__main__":
    main()
