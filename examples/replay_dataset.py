#!/usr/bin/env python3
"""Record once, replay at every rate: the paper's evaluation methodology.

Section 8.1: "we selected the above changes, and ingested them into our
system at different rates (i.e., 100, 200, 300, 400 and 500 changes per
hour).  Thus, the only difference with the real data is the inter-arrival
time between two changes."

This example records a synthetic change trace to JSON, reloads it, and
replays the *same* changes (same ground truth, same build durations, same
conflict coins) at several ingestion rates through SubmitQueue — showing
how turnaround degrades with load while the inputs stay fixed.

Run:  python examples/replay_dataset.py [--trace /tmp/trace.json]
"""

import argparse
import io
from dataclasses import replace

from repro.changes.truth import potential_conflict
from repro.experiments.runner import format_table
from repro.metrics.percentile import summarize
from repro.planner.controller import LabelBuildController
from repro.predictor.predictors import OraclePredictor
from repro.sim.simulator import Simulation
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.workload.generator import WorkloadGenerator
from repro.workload.replay import dump_stream, load_stream, retime_stream
from repro.workload.scenarios import IOS_WORKLOAD


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None,
                        help="path to save the recorded trace (default: memory)")
    parser.add_argument("--changes", type=int, default=200)
    parser.add_argument("--workers", type=int, default=200)
    args = parser.parse_args()

    # 1. Record a trace.
    generator = WorkloadGenerator(replace(IOS_WORKLOAD, seed=99))
    recorded = generator.stream(300.0, args.changes)
    if args.trace:
        with open(args.trace, "w") as fp:
            dump_stream(recorded, fp)
        with open(args.trace) as fp:
            trace = load_stream(fp)
        print(f"recorded {len(trace)} changes to {args.trace}")
    else:
        buffer = io.StringIO()
        dump_stream(recorded, buffer)
        buffer.seek(0)
        trace = load_stream(buffer)
        print(f"recorded {len(trace)} changes (in-memory trace, "
              f"{buffer.tell()} bytes of JSON)")

    # 2. Replay the same trace at different rates.
    rows = []
    for rate in (100.0, 200.0, 300.0, 400.0, 500.0):
        stream = retime_stream(trace, rate)
        result = Simulation(
            strategy=SubmitQueueStrategy(OraclePredictor()),
            controller=LabelBuildController(),
            workers=args.workers,
            conflict_predicate=potential_conflict,
        ).run(stream)
        stats = summarize(result.turnaround_values())
        rows.append(
            [f"{rate:g}/h", f"{stats['p50']:.0f}", f"{stats['p95']:.0f}",
             f"{result.throughput_per_hour:.0f}/h",
             f"{result.changes_committed}/{result.changes_submitted}"]
        )
    print(
        format_table(
            ["ingestion rate", "P50 (min)", "P95 (min)", "throughput",
             "landed"],
            rows,
            title=(
                f"\nsame {args.changes}-change trace through SubmitQueue, "
                f"{args.workers} workers"
            ),
        )
    )
    print("\nOnly inter-arrival times differ between rows — every change "
          "keeps its duration, outcome, and conflict coins.")


if __name__ == "__main__":
    main()
