#!/usr/bin/env python3
"""Quickstart: keep a tiny monorepo's master green with SubmitQueue.

Builds a small synthetic monorepo (real BUILD files, real build steps),
submits a mixed batch of changes — clean ones, an individually broken
one, and a really-conflicting pair — and shows SubmitQueue landing
exactly the safe ones while the mainline stays green at every commit
point.

Run:  python examples/quickstart.py
"""

from repro.buildsys.executor import BuildExecutor
from repro.predictor.predictors import StaticPredictor
from repro.service.api import SubmitQueueService
from repro.service.core import CoreService, CoreServiceConfig
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo


def main() -> None:
    # 1. A monorepo: three layers of build targets (libs -> services -> apps).
    monorepo = SyntheticMonorepo(MonorepoSpec(layers=(3, 4, 4), fan_in=2), seed=1)
    print(f"monorepo: {len(monorepo.graph)} targets, depth {monorepo.graph.depth()}")

    # 2. SubmitQueue: the core service over that repo, with a simple
    #    static predictor (see examples/train_predictor.py for the
    #    learned one the paper uses).
    service = SubmitQueueService(
        CoreService(
            repo=monorepo.repo,
            strategy=SubmitQueueStrategy(
                StaticPredictor(success=0.85, conflict=0.15)
            ),
            config=CoreServiceConfig(workers=4),
        )
    )

    # 3. A mixed batch of submissions.
    clean = [monorepo.make_clean_change(t) for t in monorepo.target_names(0)[:2]]
    broken = monorepo.make_broken_change(
        monorepo.target_names(0)[2], step="unit_test"
    )
    conflict_a, conflict_b = monorepo.make_conflicting_pair(
        target_name=monorepo.target_names(1)[0]
    )
    batch = clean + [broken, conflict_a, conflict_b]
    for change in batch:
        status = service.land_change(change)
        print(f"submitted {change.change_id}: {change.description}")

    # 4. Drive the queue until every change is decided.
    decisions = service.process()
    print(f"\nqueue drained: {decisions} decisions")
    for change in batch:
        status = service.status(change.change_id)
        verdict = "LANDED " if status.is_landed else "REJECTED"
        print(
            f"  {verdict} {change.change_id} "
            f"(turnaround {status.turnaround:.1f} min, "
            f"builds {status.builds_scheduled}, reason: {status.reason})"
        )

    # 5. The headline guarantee: every mainline commit point is green.
    print(f"\nmainline green: {service.mainline_is_green()}")
    for commit_id in monorepo.repo.mainline_history():
        report = BuildExecutor().build(monorepo.repo.snapshot(commit_id))
        marker = "ok" if report.success else "BROKEN"
        print(f"  commit {commit_id}: full build {marker}")


if __name__ == "__main__":
    main()
