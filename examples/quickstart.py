#!/usr/bin/env python3
"""Quickstart: keep a tiny monorepo's master green with SubmitQueue.

Builds a small synthetic monorepo (real BUILD files, real build steps),
submits a mixed batch of changes — clean ones, an individually broken
one, and a really-conflicting pair — and shows SubmitQueue landing
exactly the safe ones while the mainline stays green at every commit
point.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace /tmp/quickstart
      # then: PYTHONPATH=src python -m repro obs report /tmp/quickstart.jsonl
"""

import argparse
from typing import Optional

from repro.buildsys.executor import BuildExecutor
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.predictor.predictors import StaticPredictor
from repro.service.api import SubmitQueueService
from repro.service.core import CoreService, CoreServiceConfig
from repro.strategies.submitqueue import SubmitQueueStrategy
from repro.workload.repo_synth import MonorepoSpec, SyntheticMonorepo


def main(trace_prefix: Optional[str] = None) -> None:
    recorder = Recorder() if trace_prefix else NULL_RECORDER
    # 1. A monorepo: three layers of build targets (libs -> services -> apps).
    monorepo = SyntheticMonorepo(MonorepoSpec(layers=(3, 4, 4), fan_in=2), seed=1)
    print(f"monorepo: {len(monorepo.graph)} targets, depth {monorepo.graph.depth()}")

    # 2. SubmitQueue: the core service over that repo, with a simple
    #    static predictor (see examples/train_predictor.py for the
    #    learned one the paper uses).
    service = SubmitQueueService(
        CoreService(
            repo=monorepo.repo,
            strategy=SubmitQueueStrategy(
                StaticPredictor(success=0.85, conflict=0.15)
            ),
            config=CoreServiceConfig(workers=4),
            recorder=recorder,
        )
    )

    # 3. A mixed batch of submissions.
    clean = [monorepo.make_clean_change(t) for t in monorepo.target_names(0)[:2]]
    broken = monorepo.make_broken_change(
        monorepo.target_names(0)[2], step="unit_test"
    )
    conflict_a, conflict_b = monorepo.make_conflicting_pair(
        target_name=monorepo.target_names(1)[0]
    )
    batch = clean + [broken, conflict_a, conflict_b]
    for change in batch:
        status = service.land_change(change)
        print(f"submitted {change.change_id}: {change.description}")

    # 4. Drive the queue until every change is decided.
    decisions = service.process()
    print(f"\nqueue drained: {decisions} decisions")
    for change in batch:
        status = service.status(change.change_id)
        verdict = "LANDED " if status.is_landed else "REJECTED"
        print(
            f"  {verdict} {change.change_id} "
            f"(turnaround {status.turnaround:.1f} min, "
            f"builds {status.builds_scheduled}, reason: {status.reason})"
        )

    # 5. The headline guarantee: every mainline commit point is green.
    print(f"\nmainline green: {service.mainline_is_green()}")
    for commit_id in monorepo.repo.mainline_history():
        report = BuildExecutor().build(monorepo.repo.snapshot(commit_id))
        marker = "ok" if report.success else "BROKEN"
        print(f"  commit {commit_id}: full build {marker}")

    # 6. Optionally export the recorded trace (three views of one run)
    #    and replay it as an epoch-by-epoch report.
    if trace_prefix:
        from repro.obs.inspect import format_report, load_trace

        recorder.write_jsonl(f"{trace_prefix}.jsonl")
        recorder.write_chrome_trace(f"{trace_prefix}.trace.json")
        with open(f"{trace_prefix}.prom", "w", encoding="utf-8") as handle:
            handle.write(recorder.prometheus_text())
        print(
            f"\ntrace written: {trace_prefix}.jsonl, "
            f"{trace_prefix}.trace.json, {trace_prefix}.prom"
        )
        print()
        print(format_report(load_trace(f"{trace_prefix}.jsonl")))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="PREFIX", default=None,
        help="record the run and write PREFIX.jsonl / .trace.json / .prom",
    )
    main(trace_prefix=parser.parse_args().trace)
